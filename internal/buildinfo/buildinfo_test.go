package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestReadWithoutBuildInfo(t *testing.T) {
	info := read(nil, false)
	if info.Version != "unknown" || info.Commit != "unknown" {
		t.Fatalf("missing build info should degrade to unknown, got %+v", info)
	}
	if info.GoVersion == "" {
		t.Fatal("GoVersion must always be populated")
	}
}

func TestReadParsesVCSStamps(t *testing.T) {
	bi := &debug.BuildInfo{
		Main: debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.modified", Value: "true"},
			{Key: "vcs.time", Value: "2026-08-07T00:00:00Z"},
		},
	}
	info := read(bi, true)
	if info.Version != "v1.2.3" {
		t.Errorf("Version = %q, want v1.2.3", info.Version)
	}
	if info.Commit != "0123456789ab+dirty" {
		t.Errorf("Commit = %q, want truncated revision with +dirty", info.Commit)
	}
	if info.BuildTime != "2026-08-07T00:00:00Z" {
		t.Errorf("BuildTime = %q", info.BuildTime)
	}
}

func TestStringFormat(t *testing.T) {
	s := String("peas-test")
	if !strings.HasPrefix(s, "peas-test ") {
		t.Fatalf("String() = %q, want it to lead with the binary name", s)
	}
	if !strings.Contains(s, "commit ") || !strings.Contains(s, "go") {
		t.Fatalf("String() = %q, want commit and go version", s)
	}
}
