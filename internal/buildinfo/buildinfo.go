// Package buildinfo reports the version identity of a peas binary. All
// cmd/* entry points expose it behind a -version flag, and peas-serve
// reports it in /healthz, so a deployment can always be traced back to
// the exact build that produced it.
//
// The information comes from debug.ReadBuildInfo, which the Go linker
// embeds automatically: the main module version (when built from a
// tagged module zip) and the VCS revision/time/dirty stamps (when built
// from a git checkout).
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the resolved build identity.
type Info struct {
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// Commit is the VCS revision the binary was built from, with a
	// "+dirty" suffix when the working tree had local modifications;
	// "unknown" when no VCS stamp is embedded.
	Commit string `json:"commit"`
	// BuildTime is the VCS commit timestamp (RFC 3339), when stamped.
	BuildTime string `json:"buildTime,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
}

// read extracts Info from bi. Split from Read so tests can exercise the
// parsing without controlling the process's own build metadata.
func read(bi *debug.BuildInfo, ok bool) Info {
	info := Info{Version: "unknown", Commit: "unknown", GoVersion: runtime.Version()}
	if !ok || bi == nil {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	var revision string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		case "vcs.time":
			info.BuildTime = s.Value
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if dirty {
			revision += "+dirty"
		}
		info.Commit = revision
	}
	return info
}

// Read returns the build identity of the running binary.
func Read() Info {
	bi, ok := debug.ReadBuildInfo()
	return read(bi, ok)
}

// String renders the identity as a one-line "name version (commit, go)"
// banner, the format every -version flag prints.
func String(name string) string {
	info := Read()
	return fmt.Sprintf("%s %s (commit %s, %s)", name, info.Version, info.Commit, info.GoVersion)
}
