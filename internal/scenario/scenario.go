// Package scenario loads and saves simulation scenarios as JSON files,
// so experiments are shareable and reviewable without code changes
// (cmd/peas-sim -config).
package scenario

import (
	"encoding/json"
	"fmt"
	"os"

	"peas/internal/experiment"
	"peas/internal/node"
)

// Scenario is the JSON schema of a full run configuration. Zero-valued
// fields inherit the paper's defaults.
type Scenario struct {
	Name string `json:"name,omitempty"`

	// Deployment.
	Nodes       int     `json:"nodes"`
	Seed        int64   `json:"seed,omitempty"`
	FieldWidth  float64 `json:"fieldWidth,omitempty"`
	FieldHeight float64 `json:"fieldHeight,omitempty"`

	// Protocol.
	ProbingRange   float64 `json:"probingRange,omitempty"`
	InitialRate    float64 `json:"initialRate,omitempty"`
	DesiredRate    float64 `json:"desiredRate,omitempty"`
	EstimatorK     int     `json:"estimatorK,omitempty"`
	NumProbes      int     `json:"numProbes,omitempty"`
	ProbeWindowSec float64 `json:"probeWindowSec,omitempty"`
	Turnoff        *bool   `json:"turnoff,omitempty"`

	// Radio.
	LossRate     float64 `json:"lossRate,omitempty"`
	FixedPower   bool    `json:"fixedPower,omitempty"`
	Irregularity float64 `json:"irregularity,omitempty"`

	// Workload and faults.
	FailuresPer5000s float64 `json:"failuresPer5000s,omitempty"`
	HorizonSec       float64 `json:"horizonSec,omitempty"`
	Forwarding       *bool   `json:"forwarding,omitempty"`
}

// Load reads a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parse scenario %s: %w", path, err)
	}
	if s.Nodes <= 0 {
		return nil, fmt.Errorf("scenario %s: nodes must be positive", path)
	}
	return &s, nil
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal scenario: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunConfig converts the scenario to an executable configuration,
// filling the paper's defaults for every omitted field.
func (s *Scenario) RunConfig() experiment.RunConfig {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	netCfg := node.DefaultConfig(s.Nodes, seed)
	if s.FieldWidth > 0 {
		netCfg.Field.Width = s.FieldWidth
	}
	if s.FieldHeight > 0 {
		netCfg.Field.Height = s.FieldHeight
	}
	if s.ProbingRange > 0 {
		netCfg.Protocol.ProbingRange = s.ProbingRange
	}
	if s.InitialRate > 0 {
		netCfg.Protocol.InitialRate = s.InitialRate
	}
	if s.DesiredRate > 0 {
		netCfg.Protocol.DesiredRate = s.DesiredRate
	}
	if s.EstimatorK > 0 {
		netCfg.Protocol.EstimatorK = s.EstimatorK
	}
	if s.NumProbes > 0 {
		netCfg.Protocol.NumProbes = s.NumProbes
	}
	if s.ProbeWindowSec > 0 {
		netCfg.Protocol.ProbeWindow = s.ProbeWindowSec
	}
	if s.Turnoff != nil {
		netCfg.Protocol.TurnoffEnabled = *s.Turnoff
	}
	netCfg.Radio.LossRate = s.LossRate
	netCfg.Radio.FixedPower = s.FixedPower
	netCfg.Radio.Irregularity = s.Irregularity

	cfg := experiment.RunConfig{
		Network:          netCfg,
		FailuresPer5000s: s.FailuresPer5000s,
		Horizon:          s.HorizonSec,
		Forwarding:       true,
	}
	if s.Forwarding != nil {
		cfg.Forwarding = *s.Forwarding
	}
	return cfg
}
