package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"peas/internal/experiment"
)

func TestRoundTrip(t *testing.T) {
	off := false
	s := &Scenario{
		Name:             "harsh",
		Nodes:            480,
		Seed:             7,
		ProbingRange:     4,
		DesiredRate:      1.0 / 300,
		LossRate:         0.1,
		FailuresPer5000s: 26.66,
		HorizonSec:       2000,
		Forwarding:       &off,
	}
	path := filepath.Join(t.TempDir(), "s.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "harsh" || back.Nodes != 480 || back.ProbingRange != 4 ||
		back.Forwarding == nil || *back.Forwarding {
		t.Errorf("round trip: %+v", back)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nodes:"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON should fail")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRunConfigDefaults(t *testing.T) {
	s := &Scenario{Nodes: 160}
	cfg := s.RunConfig()
	if cfg.Network.N != 160 || cfg.Network.Seed != 1 {
		t.Errorf("basic fields: %+v", cfg.Network)
	}
	// Paper defaults survive.
	if cfg.Network.Protocol.ProbingRange != 3 || cfg.Network.Protocol.DesiredRate != 0.02 {
		t.Errorf("protocol defaults: %+v", cfg.Network.Protocol)
	}
	if !cfg.Forwarding {
		t.Error("forwarding should default on")
	}
	if cfg.Network.Field.Width != 50 || cfg.Network.Field.Height != 50 {
		t.Errorf("field defaults: %+v", cfg.Network.Field)
	}
}

func TestRunConfigOverrides(t *testing.T) {
	on := true
	s := &Scenario{
		Nodes:        100,
		FieldWidth:   30,
		FieldHeight:  20,
		ProbingRange: 5,
		EstimatorK:   16,
		NumProbes:    1,
		Turnoff:      &on,
		Irregularity: 0.3,
		FixedPower:   true,
	}
	cfg := s.RunConfig()
	if cfg.Network.Field.Width != 30 || cfg.Network.Field.Height != 20 {
		t.Errorf("field: %+v", cfg.Network.Field)
	}
	if cfg.Network.Protocol.ProbingRange != 5 || cfg.Network.Protocol.EstimatorK != 16 ||
		cfg.Network.Protocol.NumProbes != 1 {
		t.Errorf("protocol: %+v", cfg.Network.Protocol)
	}
	if !cfg.Network.Radio.FixedPower || cfg.Network.Radio.Irregularity != 0.3 {
		t.Errorf("radio: %+v", cfg.Network.Radio)
	}
}

func TestScenarioRuns(t *testing.T) {
	s := &Scenario{Nodes: 80, Seed: 3, HorizonSec: 400}
	rs, err := experiment.Run(s.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Wakeups == 0 || rs.MeanWorking <= 0 {
		t.Errorf("scenario run produced nothing: %+v", rs)
	}
}
