package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"peas/internal/client"
	"peas/internal/jobqueue"
	"peas/internal/node"
	"peas/internal/server/api"
)

func stubSpec() *jobqueue.Spec {
	return &jobqueue.Spec{Network: node.Config{N: 40, Seed: 1}, Horizon: 600}
}

// flakyServer answers 429 (with a Retry-After hint) to the first
// rejections submissions, then accepts. It stands in for a saturated
// peas-serve without running any simulation.
func flakyServer(t *testing.T, rejections int32, retryAfterSecs int) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= rejections {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{
				Error:             "queue full",
				RetryAfterSeconds: retryAfterSecs,
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(api.SubmitResponse{
			Outcome: jobqueue.OutcomeAccepted,
			Job:     api.JobInfo{ID: "j-000001", State: jobqueue.StateQueued},
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestSubmitWithRetrySucceedsAfterRejections pins the retry loop: two
// 429s then an acceptance must yield the accepted job, with exactly
// three submit attempts and the backoff honoring the Retry-After hint
// (capped by MaxWait so the test stays fast).
func TestSubmitWithRetrySucceedsAfterRejections(t *testing.T) {
	ts, calls := flakyServer(t, 2, 7)
	c := client.New(ts.URL)

	var retries []time.Duration
	pol := client.RetryPolicy{
		MaxAttempts: 5,
		BaseWait:    time.Millisecond,
		MaxWait:     5 * time.Millisecond,
		OnRetry:     func(_ int, wait time.Duration) { retries = append(retries, wait) },
	}
	resp, err := c.SubmitWithRetry(context.Background(), stubSpec(), pol)
	if err != nil {
		t.Fatalf("SubmitWithRetry: %v", err)
	}
	if resp.Job.ID != "j-000001" {
		t.Errorf("job ID = %q", resp.Job.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("submit attempts = %d, want 3", got)
	}
	if len(retries) != 2 {
		t.Fatalf("observed %d retries, want 2", len(retries))
	}
	for i, w := range retries {
		// The 7s server hint must be clamped to MaxWait.
		if w != 5*time.Millisecond {
			t.Errorf("retry %d waited %v, want MaxWait clamp of 5ms", i, w)
		}
	}
}

// TestSubmitWithRetryExhaustsAttempts: a server that never yields must
// produce the last RetryableError after exactly MaxAttempts tries.
func TestSubmitWithRetryExhaustsAttempts(t *testing.T) {
	ts, calls := flakyServer(t, 1000, 0)
	c := client.New(ts.URL)

	pol := client.RetryPolicy{MaxAttempts: 3, BaseWait: time.Millisecond, MaxWait: 2 * time.Millisecond}
	_, err := c.SubmitWithRetry(context.Background(), stubSpec(), pol)
	var retryable *client.RetryableError
	if !errors.As(err, &retryable) {
		t.Fatalf("err = %v, want RetryableError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("submit attempts = %d, want 3", got)
	}
}

// TestSubmitWithRetryNonRetryable: a 400 must return immediately
// without retries.
func TestSubmitWithRetryNonRetryable(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: "bad spec"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	c := client.New(ts.URL)
	_, err := c.SubmitWithRetry(context.Background(), stubSpec(), client.RetryPolicy{})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("submit attempts = %d, want 1 (no retry on 400)", got)
	}
}

// TestSubmitWithRetryContextCancel: cancellation during a backoff wait
// returns promptly with the context error.
func TestSubmitWithRetryContextCancel(t *testing.T) {
	ts, _ := flakyServer(t, 1000, 30)
	c := client.New(ts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	pol := client.RetryPolicy{
		MaxAttempts: 10,
		BaseWait:    time.Minute, // force a long wait; cancel must cut it short
		MaxWait:     time.Minute,
		OnRetry:     func(int, time.Duration) { cancel() },
	}
	start := time.Now()
	_, err := c.SubmitWithRetry(ctx, stubSpec(), pol)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancel took %v, want prompt return", elapsed)
	}
}
