// Package client is the typed Go client of the simulation service: the
// counterpart of internal/server used by peas-sim -remote, the smoke
// tooling and the end-to-end tests. It speaks the api wire types,
// surfaces 429 admission rejections as *RetryableError with the
// server's Retry-After hint, and can follow a job's SSE event stream.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"peas/internal/jobqueue"
	"peas/internal/server/api"
)

// Client talks to one peas-serve instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the service at base (e.g.
// "http://127.0.0.1:8080"). The http.Client has no overall timeout:
// SSE streams and long polls are bounded by the caller's context.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// RetryableError reports a transient server-side rejection the caller
// should retry after a delay: 429 (queue full) or 503 (the state store
// cannot persist the admission right now, e.g. a full disk).
type RetryableError struct {
	Message    string
	RetryAfter time.Duration
	// Code is the server's machine-readable rejection class (api.Code*):
	// "queue_full", "deadline_infeasible" or "persist_failed". Callers
	// use it to choose a strategy — wait out a full queue, but loosen or
	// drop the deadline when admission says it is infeasible.
	Code string
}

func (e *RetryableError) Error() string {
	return fmt.Sprintf("server busy: %s (retry after %s)", e.Message, e.RetryAfter)
}

// APIError reports any other non-2xx response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

func (c *Client) url(path string) string { return c.base + path }

// decodeError turns a non-2xx response into a typed error.
func decodeError(resp *http.Response) error {
	var body api.ErrorResponse
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		retry := time.Duration(body.RetryAfterSeconds) * time.Second
		if retry == 0 {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				retry = time.Duration(secs) * time.Second
			}
		}
		if retry == 0 {
			retry = time.Second
		}
		return &RetryableError{Message: msg, RetryAfter: retry, Code: body.Code}
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec. The response reports whether it was
// accepted, coalesced onto an in-flight run, or served from the cache.
func (c *Client) Submit(ctx context.Context, spec *jobqueue.Spec) (*api.SubmitResponse, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/api/v1/jobs"), bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	var out api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RetryPolicy bounds SubmitWithRetry. The zero value means 4 attempts,
// a 100ms backoff seed and a 5s per-wait cap.
type RetryPolicy struct {
	// MaxAttempts is the total number of submit attempts (not retries);
	// the first 429 consumes attempt one.
	MaxAttempts int
	// BaseWait seeds the exponential backoff used as a floor under the
	// server's Retry-After hint, so a server that keeps answering with a
	// tiny hint still sees decreasing pressure from this client.
	BaseWait time.Duration
	// MaxWait caps any single wait, whatever the server suggests.
	MaxWait time.Duration
	// OnRetry, when non-nil, observes each backoff before sleeping:
	// attempt is the 1-based attempt that was rejected, wait the chosen
	// delay. The load generator uses it to count retries.
	OnRetry func(attempt int, wait time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseWait <= 0 {
		p.BaseWait = 100 * time.Millisecond
	}
	if p.MaxWait <= 0 {
		p.MaxWait = 5 * time.Second
	}
	return p
}

// SubmitWithRetry submits a job spec, absorbing 429 admission
// rejections with bounded, capped-exponential backoff that honors the
// server's Retry-After hint: each wait is max(hint, BaseWait<<attempt)
// clamped to MaxWait. Non-retryable errors (400s, transport failures)
// return immediately; exhausting MaxAttempts returns the last
// *RetryableError so callers can still distinguish "busy" from
// "broken".
func (c *Client) SubmitWithRetry(ctx context.Context, spec *jobqueue.Spec, pol RetryPolicy) (*api.SubmitResponse, error) {
	pol = pol.withDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := c.Submit(ctx, spec)
		if err == nil {
			return resp, nil
		}
		var retryable *RetryableError
		if !errors.As(err, &retryable) {
			return nil, err
		}
		lastErr = err
		if attempt >= pol.MaxAttempts {
			return nil, lastErr
		}
		wait := retryable.RetryAfter
		if floor := pol.BaseWait << (attempt - 1); wait < floor {
			wait = floor
		}
		if wait > pol.MaxWait {
			wait = pol.MaxWait
		}
		if pol.OnRetry != nil {
			pol.OnRetry(attempt, wait)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// Cancel requests cancellation of a job (DELETE /api/v1/jobs/{id}).
// The call is idempotent: Requested reports whether this request
// initiated the stop (false when the job was already terminal or a stop
// was already in flight), and the embedded JobInfo is the job's current
// view. Unknown IDs return an *APIError with Status 404.
func (c *Client) Cancel(ctx context.Context, id string) (*api.CancelResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/api/v1/jobs/"+id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	var out api.CancelResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches one job by ID.
func (c *Client) Job(ctx context.Context, id string) (*api.JobInfo, error) {
	var out api.JobInfo
	if err := c.getJSON(ctx, "/api/v1/jobs/"+id, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists every job the server tracks.
func (c *Client) Jobs(ctx context.Context) ([]api.JobInfo, error) {
	var out api.JobListResponse
	if err := c.getJSON(ctx, "/api/v1/jobs", &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Result fetches a cached result by content key.
func (c *Client) Result(ctx context.Context, key string) (*jobqueue.Result, error) {
	var out api.ResultResponse
	if err := c.getJSON(ctx, "/api/v1/results/"+key, &out); err != nil {
		return nil, err
	}
	return out.Result, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Events follows the job's SSE stream, invoking fn per event until the
// stream ends (terminal job state), fn returns false, or ctx is done.
func (c *Client) Events(ctx context.Context, id string, fn func(ev jobqueue.Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/api/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // "event:" lines and blank separators
		}
		var ev jobqueue.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("client: malformed SSE event: %w", err)
		}
		if !fn(ev) {
			return nil
		}
	}
	if err := scanner.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// Wait polls until the job reaches a terminal state and returns its
// final JobInfo. Failed, cancelled and deadline-killed jobs yield a
// plain error with the job's message; suspended jobs an explanatory
// error. The returned JobInfo is non-nil for every terminal state so
// callers can still inspect the job alongside the error.
func (c *Client) Wait(ctx context.Context, id string) (*api.JobInfo, error) {
	tick := time.NewTicker(150 * time.Millisecond)
	defer tick.Stop()
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch info.State {
		case jobqueue.StateDone:
			return info, nil
		case jobqueue.StateFailed:
			return info, fmt.Errorf("job %s failed: %s", id, info.Error)
		case jobqueue.StateCancelled:
			return info, fmt.Errorf("job %s cancelled: %s", id, info.Error)
		case jobqueue.StateDeadline:
			return info, fmt.Errorf("job %s exceeded its deadline: %s", id, info.Error)
		case jobqueue.StateSuspended:
			return info, fmt.Errorf("job %s suspended by server shutdown; it resumes after restart", id)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}
