package peas_test

import (
	"fmt"

	"peas"
)

// ExampleRun executes one full evaluation run with the paper's defaults
// and reads the headline metrics. Results are deterministic in the seed.
func ExampleRun() {
	cfg := peas.DefaultRunConfig(160, 1)
	cfg.Horizon = 1000 // cap for a quick example; 0 runs to exhaustion

	res, err := peas.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("plausible working set: %v\n", res.MeanWorking > 40 && res.MeanWorking < 120)
	fmt.Printf("1-coverage after boot: %.0f%%\n", 100*res.InitialCoverage[0])
	// Output:
	// plausible working set: true
	// 1-coverage after boot: 100%
}

// ExampleNewNetwork drives a simulated network directly: deploy, run,
// and inspect the working set.
func ExampleNewNetwork() {
	net, err := peas.NewNetwork(peas.DefaultNetworkConfig(100, 7))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	net.Start()
	net.Run(300)
	fmt.Printf("alive: %d\n", net.AliveCount())
	fmt.Printf("some nodes work, some sleep: %v\n",
		net.WorkingCount() > 0 && net.WorkingCount() < 100)
	// Output:
	// alive: 100
	// some nodes work, some sleep: true
}

// ExampleDefaultProtocolConfig shows the paper's protocol parameters and
// how an application adapts them to its tolerance (paper §2.2.1).
func ExampleDefaultProtocolConfig() {
	cfg := peas.DefaultProtocolConfig()
	fmt.Printf("Rp=%.0fm lambda0=%.1f lambdaD=%.2f k=%d probes=%d\n",
		cfg.ProbingRange, cfg.InitialRate, cfg.DesiredRate,
		cfg.EstimatorK, cfg.NumProbes)

	// An animal tracker tolerating 5-minute gaps probes once per 300 s.
	cfg.DesiredRate = 1.0 / 300
	fmt.Printf("animal tracking lambdaD: %.4f\n", cfg.DesiredRate)
	// Output:
	// Rp=3m lambda0=0.1 lambdaD=0.02 k=32 probes=3
	// animal tracking lambdaD: 0.0033
}

// ExampleRenderASCII draws a small deployment as a terminal map.
func ExampleRenderASCII() {
	cfg := peas.DefaultNetworkConfig(8, 3)
	cfg.Field = peas.Field{Width: 8, Height: 8}
	net, err := peas.NewNetwork(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	net.Start()
	net.Run(200)
	m := peas.RenderASCII(net, 4)
	fmt.Printf("map is %d characters\n", len(m))
	// Output:
	// map is 12 characters
}
