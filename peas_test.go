package peas_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"peas"
)

func TestDefaultConfigsMatchPaper(t *testing.T) {
	p := peas.DefaultProtocolConfig()
	if p.ProbingRange != 3 || p.InitialRate != 0.1 || p.DesiredRate != 0.02 ||
		p.EstimatorK != 32 || p.NumProbes != 3 || p.ProbeWindow != 0.1 ||
		p.PacketSize != 25 {
		t.Errorf("protocol defaults diverge from the paper: %+v", p)
	}
	n := peas.DefaultNetworkConfig(480, 1)
	if n.Field.Width != 50 || n.Field.Height != 50 || n.N != 480 {
		t.Errorf("network defaults: %+v", n)
	}
	if n.InitialEnergyMin != 54 || n.InitialEnergyMax != 60 {
		t.Errorf("battery range: %+v", n)
	}
	if n.Radio.BitsPerSecond != 20000 || n.Radio.MaxRange != 10 {
		t.Errorf("radio defaults: %+v", n.Radio)
	}
	r := peas.DefaultRunConfig(160, 1)
	if r.FailuresPer5000s != 10.66 || !r.Forwarding {
		t.Errorf("run defaults: %+v", r)
	}
}

func TestPublicRun(t *testing.T) {
	cfg := peas.DefaultRunConfig(160, 11)
	cfg.Horizon = 1200
	res, err := peas.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanWorking <= 0 || res.Wakeups == 0 {
		t.Errorf("implausible results: %+v", res)
	}
	if res.InitialCoverage[0] < 0.9 {
		t.Errorf("1-coverage after boot = %v", res.InitialCoverage[0])
	}
}

func TestPublicNetwork(t *testing.T) {
	net, err := peas.NewNetwork(peas.DefaultNetworkConfig(60, 2))
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Run(400)
	if net.WorkingCount() == 0 || net.AliveCount() != 60 {
		t.Errorf("working=%d alive=%d", net.WorkingCount(), net.AliveCount())
	}
	// State constants are usable through the facade.
	for _, n := range net.Nodes {
		switch n.State() {
		case peas.Sleeping, peas.Probing, peas.Working, peas.Dead:
		default:
			t.Fatalf("unknown state %v", n.State())
		}
	}
}

func TestPublicStudies(t *testing.T) {
	if out := peas.EstimatorStudy(1).String(); !strings.Contains(out, "k") {
		t.Error("estimator study output empty")
	}
	if out := peas.LossStudy(1).String(); !strings.Contains(out, "loss-rate") {
		t.Error("loss study output empty")
	}
}

func TestPublicSweepOptions(t *testing.T) {
	opts := peas.DefaultSweepOptions()
	if opts.Runs != 5 || len(opts.Deployments) != 5 || len(opts.FailureRates) != 9 {
		t.Errorf("paper sweep options: %+v", opts)
	}
}

func TestFacadeScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(`{"nodes":50,"horizonSec":200}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := peas.LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := peas.Run(sc.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Wakeups == 0 {
		t.Error("scenario run inert")
	}
}

func TestFacadeTraceAndRender(t *testing.T) {
	rec := peas.NewTraceRecorder(100)
	cfg := peas.DefaultRunConfig(40, 5)
	cfg.Horizon = 200
	cfg.Forwarding = false
	cfg.Trace = rec
	var svg, ascii string
	cfg.OnFinish = func(net *peas.Network) {
		ascii = peas.RenderASCII(net, 5)
		var b strings.Builder
		if err := peas.RenderSVG(&b, net, peas.SVGOptions{SensingRange: 10}); err != nil {
			t.Error(err)
		}
		svg = b.String()
	}
	if _, err := peas.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Error("trace empty")
	}
	if !strings.Contains(ascii, "W") || !strings.Contains(svg, "<svg") {
		t.Error("renders empty")
	}
}
