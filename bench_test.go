// Benchmarks regenerating the paper's evaluation. One benchmark per
// figure/table runs a single-seed sweep (the paper averages 5 seeds; use
// cmd/peas-bench for the full version) and reports the resulting rows via
// b.Log, plus micro-benchmarks for the hot simulator paths.
//
//	go test -bench=. -benchmem
package peas_test

import (
	"testing"

	"peas"
	"peas/internal/coverage"
	"peas/internal/geom"
	"peas/internal/sim"
	"peas/internal/stats"
)

func quickSweep() peas.SweepOptions {
	opts := peas.DefaultSweepOptions()
	opts.Runs = 1
	return opts
}

func BenchmarkFig9CoverageLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := peas.DeploymentSweep(quickSweep())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Fig9())
		}
	}
}

func BenchmarkFig10DeliveryLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := peas.DeploymentSweep(quickSweep())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Fig10())
		}
	}
}

func BenchmarkFig11Wakeups(b *testing.B) {
	opts := quickSweep()
	opts.Forwarding = false // wakeup counting does not need the workload
	for i := 0; i < b.N; i++ {
		res, err := peas.DeploymentSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Fig11())
		}
	}
}

func BenchmarkTable1EnergyOverhead(b *testing.B) {
	opts := quickSweep()
	opts.Forwarding = false
	for i := 0; i < b.N; i++ {
		res, err := peas.DeploymentSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table1())
		}
	}
}

func BenchmarkFig12CoverageUnderFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := peas.FailureSweep(quickSweep())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Fig12())
		}
	}
}

func BenchmarkFig13DeliveryUnderFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := peas.FailureSweep(quickSweep())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Fig13())
		}
	}
}

func BenchmarkFig14WakeupsUnderFailures(b *testing.B) {
	opts := quickSweep()
	opts.Forwarding = false
	for i := 0; i < b.N; i++ {
		res, err := peas.FailureSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Fig14())
		}
	}
}

func BenchmarkEstimatorStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.EstimatorStudy(int64(i + 1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

func BenchmarkConnectivityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.ConnectivityStudy(2, int64(i+1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

func BenchmarkGapStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.GapStudy(1, int64(i+1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

func BenchmarkLossStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.LossStudy(int64(i + 1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

func BenchmarkTurnoffStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.TurnoffStudy(int64(i + 1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// --- micro-benchmarks of the simulator's hot paths ---

// BenchmarkSingleRun480 measures one paper-scale run (480 nodes, full
// lifetime) end to end.
func BenchmarkSingleRun480(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := peas.DefaultRunConfig(480, int64(i+1))
		if _, err := peas.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i%100), func() {})
		if i%1024 == 1023 {
			e.Run(e.Now() + 200)
		}
	}
}

func BenchmarkSpatialIndexWithin(b *testing.B) {
	f := geom.NewField(50, 50)
	rng := stats.NewRNG(1)
	pts := geom.UniformDeploy(f, 800, rng)
	idx := geom.NewIndex(f, pts, 3)
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		center := pts[i%len(pts)]
		idx.Within(center, 3, func(int, float64) { count++ })
	}
	_ = count
}

func BenchmarkCoverageLattice(b *testing.B) {
	f := geom.NewField(50, 50)
	lattice := coverage.NewLattice(f, 1)
	sensors := geom.UniformDeploy(f, 100, stats.NewRNG(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lattice.Fraction(sensors, 10, 5)
	}
}

func BenchmarkExponentialSampling(b *testing.B) {
	rng := stats.NewRNG(3)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rng.Exp(0.02)
	}
	_ = sink
}

// BenchmarkDeviationAblation regenerates the DESIGN.md §5 ablation table.
func BenchmarkDeviationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.DeviationStudy(int64(i + 1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// BenchmarkThreeD regenerates the §3-footnote 3-D table.
func BenchmarkThreeD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.ThreeDStudy(int64(i + 1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// BenchmarkGrabCheck regenerates the packet-level GRAB cross-validation.
func BenchmarkGrabCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.GrabCheckStudy(int64(i + 1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// BenchmarkIrregularity regenerates the §4 attenuation-irregularity table.
func BenchmarkIrregularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.IrregularityStudy(int64(i + 1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// BenchmarkTracking regenerates the mobile-target tracking table.
func BenchmarkTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := peas.TrackingStudy(int64(i + 1))
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// BenchmarkNetworkBoot measures deploying and booting a 480-node network
// through the probing storm (first 100 s).
func BenchmarkNetworkBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := peas.NewNetwork(peas.DefaultNetworkConfig(480, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		net.Start()
		net.Run(100)
	}
}

// BenchmarkSensingObserve measures one tracker observation pass.
func BenchmarkSensingObserve(b *testing.B) {
	f := geom.NewField(50, 50)
	tracker := peas.NewSensingTracker(f, 10, 8, 1.5, 1)
	working := geom.UniformDeploy(f, 120, stats.NewRNG(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracker.Observe(float64(i), working)
	}
}
