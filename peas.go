// Package peas is a Go implementation and evaluation harness for PEAS
// (Probing Environment and Adaptive Sleeping), the robust energy-conserving
// protocol for long-lived sensor networks by Ye, Zhong, Cheng, Lu and
// Zhang (ICDCS 2003).
//
// PEAS extends a sensor network's lifetime by keeping only a necessary set
// of nodes working and putting the rest to sleep. Sleeping nodes wake up
// at exponentially distributed intervals, PROBE their neighborhood within
// a probing range Rp, and go back to sleep if any working node REPLYs;
// otherwise they start working until they die. Working nodes measure the
// aggregate probing rate of their sleeping neighbors and feed it back in
// REPLYs so each sleeper tunes its wakeup rate toward a desired aggregate
// rate λd — all without any per-neighbor state.
//
// The package offers three layers:
//
//   - a deterministic packet-level simulator (NewNetwork / Run) with the
//     paper's Motes-like radio and battery models, coverage and
//     connectivity analysis, failure injection, and a GRAB-like data
//     delivery workload;
//   - the full evaluation harness (DeploymentSweep, FailureSweep, and the
//     §2-§4 studies) regenerating every figure and table of the paper;
//   - a live runtime (package peasnet) where each node is a goroutine
//     over a pluggable transport, running the same protocol state machine
//     as the simulator.
//
// # Quick start
//
//	cfg := peas.DefaultRunConfig(160, 1)
//	res, err := peas.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("4-coverage lifetime: %.0f s\n", res.CoverageLifetime[3])
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package peas

import (
	"io"

	"peas/internal/chaos"
	"peas/internal/checkpoint"
	"peas/internal/core"
	"peas/internal/energy"
	"peas/internal/experiment"
	"peas/internal/geom"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/oracle"
	"peas/internal/radio"
	"peas/internal/render"
	"peas/internal/scenario"
	"peas/internal/sensing"
	"peas/internal/stats"
	"peas/internal/trace"
)

// Aliases re-exporting the library's public surface. Users build against
// these names; the internal packages stay free to reorganize.
type (
	// ProtocolConfig holds the PEAS protocol parameters (Rp, λ0, λd,
	// estimator k, probe count, probe window, turn-off extension).
	ProtocolConfig = core.Config
	// NetworkConfig describes a simulated deployment: field, node count,
	// protocol, radio, energy model and seed.
	NetworkConfig = node.Config
	// RadioConfig holds the physical-layer parameters.
	RadioConfig = radio.Config
	// EnergyProfile holds per-mode power draws in watts.
	EnergyProfile = energy.Profile
	// Network is a deployed, runnable simulated sensor network.
	Network = node.Network
	// Node is one simulated sensor.
	Node = node.Node
	// RunConfig configures one full evaluation run (network + failures +
	// workload + metrics).
	RunConfig = experiment.RunConfig
	// RunStats carries every metric a run produces.
	RunStats = experiment.RunStats
	// SweepOptions parameterizes the paper-figure sweeps.
	SweepOptions = experiment.Options
	// Table is a printable experiment result.
	Table = experiment.Table
	// Point is a position in the field, in meters.
	Point = geom.Point
	// Field is a rectangular deployment area.
	Field = geom.Field
	// State is a node operation mode.
	State = core.State
	// NodeID identifies a node.
	NodeID = core.NodeID
)

// Checkpoint is a versioned full-state snapshot of a run: node state
// machines, batteries, RNG streams, pending timers, the failure schedule
// and the metric series. Capture them via RunConfig.CheckpointEvery /
// OnCheckpoint, persist with Checkpoint.Encode, and continue a run via
// RunConfig.Resume.
type Checkpoint = checkpoint.Snapshot

// CheckpointVerifyResult reports one checkpoint/resume equivalence check.
type CheckpointVerifyResult = experiment.VerifyResult

// DecodeCheckpoint reads a snapshot in the canonical binary format, as
// written by Checkpoint.Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) { return checkpoint.Decode(r) }

// VerifyCheckpoint checks the checkpoint determinism contract on one
// configuration: a run interrupted at a mid-run snapshot, serialized,
// restored and resumed must end in exactly the state of the uninterrupted
// run. cmd/peas-sim exposes it as the -verify mode.
func VerifyCheckpoint(cfg RunConfig) (*CheckpointVerifyResult, error) {
	return experiment.VerifyCheckpoint(cfg)
}

// InvariantChecker is a read-only runtime oracle watching a live run for
// protocol and physics violations: energy-ledger conservation, radio
// discipline of sleeping/dead nodes, redundant-worker resolution, timer
// monotonicity and battery/lifecycle agreement. Attach one with
// AttachChecker; it never perturbs the simulation (the run's StateHash is
// bit-identical with and without it). cmd/peas-sim exposes it as -check.
type InvariantChecker = oracle.Checker

// InvariantConfig tunes the oracle's scan interval, tolerances and
// violation cap.
type InvariantConfig = oracle.Config

// InvariantViolation is one detected contract breach, timestamped in
// simulated seconds.
type InvariantViolation = oracle.Violation

// DefaultInvariantConfig returns the oracle defaults used by -check.
func DefaultInvariantConfig() InvariantConfig { return oracle.DefaultConfig() }

// AttachChecker arms the runtime invariant oracle on a network that has
// not started yet (e.g. from RunConfig.OnNetwork).
func AttachChecker(net *Network, cfg InvariantConfig) *InvariantChecker {
	return oracle.Attach(net, cfg)
}

// ChainVerifyResult reports a multi-boundary checkpoint differential
// verification; see VerifyCheckpointChain.
type ChainVerifyResult = oracle.ChainResult

// VerifyCheckpointChain runs cfg once, snapshots every `every` simulated
// seconds, then resumes from every boundary and requires each resumed
// run to reach the direct run's exact final StateHash.
func VerifyCheckpointChain(cfg RunConfig, every float64) (*ChainVerifyResult, error) {
	return oracle.VerifyChain(cfg, every)
}

// ChaosPlan is a scripted fault-injection campaign: a seed plus an event
// schedule drawn from one fault vocabulary (loss, bursty loss,
// duplication, reordering, delay, partitions, fail-stop, fail-recover,
// crash-restart). Attach one to a run via RunConfig.Chaos; same plan +
// same seed reproduces the same faults at the same instants.
type ChaosPlan = chaos.Plan

// ChaosEvent is one scripted fault in a ChaosPlan.
type ChaosEvent = chaos.Event

// FaultClass names one kind of injectable fault.
type FaultClass = chaos.FaultClass

// FaultCounters is an ordered set of named fault counters; pass one as
// RunConfig.ChaosCounters to observe per-class fault activity.
type FaultCounters = metrics.Counters

// NewFaultCounters returns an empty fault counter set.
func NewFaultCounters() *FaultCounters { return metrics.NewCounters() }

// LoadChaosPlan reads and validates a JSON chaos plan.
func LoadChaosPlan(path string) (*ChaosPlan, error) { return chaos.Load(path) }

// MixedChaosPlan returns the built-in campaign exercising every fault
// class within the given horizon. cmd/peas-chaos exposes it as
// -plan mixed.
func MixedChaosPlan(horizon float64, seed int64) *ChaosPlan {
	return chaos.MixedPlan(horizon, seed)
}

// UnexercisedFaults returns the classes whose completion counter is still
// zero — a strict chaos campaign fails when any planned class never fired.
func UnexercisedFaults(classes []FaultClass, c *FaultCounters) []FaultClass {
	return chaos.Unexercised(classes, c)
}

// TraceRecorder buffers structured simulation events (state changes,
// deaths, frame deliveries); attach one via RunConfig.Trace and stream it
// with WriteJSONL.
type TraceRecorder = trace.Recorder

// TraceEvent is one recorded simulation event.
type TraceEvent = trace.Event

// NewTraceRecorder returns a recorder keeping at most limit events
// (0 = unlimited).
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// Target is a mobile point following a random-waypoint trajectory, used
// by the sensing workload.
type Target = sensing.Target

// SensingTracker measures detection latency and exposure of mobile
// targets against the working set.
type SensingTracker = sensing.Tracker

// SensingReport summarizes target-tracking quality.
type SensingReport = sensing.Report

// NewSensingTracker creates count random-waypoint targets at the given
// speed and tracks their detection by working nodes within sensingRange.
func NewSensingTracker(field Field, sensingRange float64, count int, speed float64, seed int64) *SensingTracker {
	return sensing.NewTracker(field, sensingRange, count, speed, stats.NewRNG(seed))
}

// Scenario is a JSON-serializable run description; see
// internal/scenario for the schema. cmd/peas-sim loads them via -config.
type Scenario = scenario.Scenario

// LoadScenario reads a JSON scenario file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// SVGOptions controls RenderSVG snapshots.
type SVGOptions = render.SVGOptions

// RenderASCII draws the network as a character map, one cell per `cell`
// meters ('W' working, 's' sleeping, 'p' probing, 'x' dead).
func RenderASCII(net *Network, cell float64) string { return render.ASCII(net, cell) }

// RenderSVG writes a vector snapshot of the network with optional
// sensing-coverage discs.
func RenderSVG(w io.Writer, net *Network, opts SVGOptions) error {
	return render.SVG(w, net, opts)
}

// Node operation modes (paper Figure 1), plus the terminal Dead state.
const (
	Sleeping = core.Sleeping
	Probing  = core.Probing
	Working  = core.Working
	Dead     = core.Dead
)

// DefaultProtocolConfig returns the paper's protocol parameters:
// Rp = 3 m, λ0 = 0.1/s, λd = 0.02/s, k = 32, 3 PROBEs over a 100 ms window,
// 25-byte packets.
func DefaultProtocolConfig() ProtocolConfig { return core.DefaultConfig() }

// DefaultNetworkConfig returns the paper's evaluation deployment for n
// nodes: a 50x50 m field, uniform placement, Motes-like radio and battery.
func DefaultNetworkConfig(n int, seed int64) NetworkConfig {
	return node.DefaultConfig(n, seed)
}

// DefaultRunConfig returns a full evaluation run at the paper's base
// failure rate with the data-delivery workload enabled.
func DefaultRunConfig(n int, seed int64) RunConfig {
	return RunConfig{
		Network:          node.DefaultConfig(n, seed),
		FailuresPer5000s: experiment.BaseFailuresPer5000,
		Forwarding:       true,
	}
}

// NewNetwork deploys a simulated network. Use it directly for custom
// scenarios; use Run for the paper's standard metrics.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return node.NewNetwork(cfg) }

// Run executes one simulation run and gathers coverage lifetimes, data
// delivery lifetime, wakeup counts and energy overhead.
func Run(cfg RunConfig) (*RunStats, error) { return experiment.Run(cfg) }

// DeploymentSweep reproduces the varying-population experiment behind
// Figures 9, 10, 11 and Table 1.
func DeploymentSweep(opts SweepOptions) (*experiment.DeploymentSweepResult, error) {
	return experiment.DeploymentSweep(opts)
}

// FailureSweep reproduces the robustness experiment behind Figures 12-14.
func FailureSweep(opts SweepOptions) (*experiment.FailureSweepResult, error) {
	return experiment.FailureSweep(opts)
}

// EstimatorStudy reproduces the §2.2.1 estimator-accuracy analysis.
func EstimatorStudy(seed int64) *Table { return experiment.EstimatorStudy(seed) }

// ConnectivityStudy reproduces the §3 working-set geometry checks.
func ConnectivityStudy(seeds int, seed int64) *Table {
	return experiment.ConnectivityStudy(seeds, seed)
}

// GapStudy compares replacement gaps between PEAS and synchronized
// sleeping (§2.1.1, Figures 4-5).
func GapStudy(seeds int, seed int64) *Table { return experiment.GapStudy(seeds, seed) }

// LossStudy reproduces the §4 multi-PROBE loss-compensation experiment.
func LossStudy(seed int64) *Table { return experiment.LossStudy(seed) }

// TurnoffStudy measures the §4 redundant-worker turn-off extension.
func TurnoffStudy(seed int64) *Table { return experiment.TurnoffStudy(seed) }

// DeploymentDistributionStudy compares uniform, even and clustered
// deployments (§4, "Distribution of deployed nodes").
func DeploymentDistributionStudy(seed int64) *Table {
	return experiment.DeploymentDistributionStudy(seed)
}

// FixedPowerStudy compares variable transmission power against the §4
// fixed-power mode with signal-strength threshold filtering.
func FixedPowerStudy(seed int64) *Table { return experiment.FixedPowerStudy(seed) }

// RpSweepStudy sweeps the probing range Rp, relating working density and
// the Theorem 3.1 connectivity condition.
func RpSweepStudy(seed int64) *Table { return experiment.RpSweepStudy(seed) }

// BootStudy measures boot-up time to 90% 1-coverage as a function of the
// initial probing rate λ0 (§2.1).
func BootStudy(seed int64) *Table { return experiment.BootStudy(seed) }

// DensityStudy empirically checks Lemma 3.1's cell-occupancy premise.
func DensityStudy(seed int64) *Table { return experiment.DensityStudy(seed) }

// MeshStudy measures the GRAB substrate's mesh-width/delivery tradeoff
// under lossy data hops.
func MeshStudy(seed int64) *Table { return experiment.MeshStudy(seed) }

// GrabCheckStudy cross-validates packet-level GRAB forwarding against
// the connectivity-level model used by the lifetime sweeps.
func GrabCheckStudy(seed int64) *Table { return experiment.GrabCheckStudy(seed) }

// IrregularityStudy reproduces §4's signal-attenuation-irregularity
// prediction: poorer-reception areas keep denser working sets.
func IrregularityStudy(seed int64) *Table { return experiment.IrregularityStudy(seed) }

// TrackingStudy measures mobile-target detection quality under failures.
func TrackingStudy(seed int64) *Table { return experiment.TrackingStudy(seed) }

// DeviationStudy ablates each deviation from a literal paper reading
// (DESIGN.md §5), demonstrating why each is necessary.
func DeviationStudy(seed int64) *Table { return experiment.DeviationStudy(seed) }

// ThreeDStudy exercises the §3 footnote: the probing rule in a 3-D volume.
func ThreeDStudy(seed int64) *Table { return experiment.ThreeDStudy(seed) }

// DefaultSweepOptions returns the paper's full evaluation setup
// (deployments 160-800, failure rates 5.33-48 per 5000 s, 5 runs each).
func DefaultSweepOptions() SweepOptions { return experiment.DefaultOptions() }
