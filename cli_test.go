package peas_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into the test's temp dir and returns the
// binary path. Building once per test keeps the suite hermetic.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCLIPeasSim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "cmd/peas-sim")
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "trace.jsonl")
	seriesOut := filepath.Join(dir, "series.csv")
	svgOut := filepath.Join(dir, "final.svg")

	out := runTool(t, bin, "-n", "100", "-horizon", "600",
		"-trace", traceOut, "-series", seriesOut, "-svg", svgOut)
	for _, want := range []string{"mean working nodes", "wakeups", "energy overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{traceOut, seriesOut, svgOut} {
		info, err := os.Stat(f)
		if err != nil || info.Size() == 0 {
			t.Errorf("artifact %s missing or empty: %v", f, err)
		}
	}

	// Scenario file path.
	sc := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(sc, []byte(`{"nodes":80,"horizonSec":300}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runTool(t, bin, "-config", sc)
	if !strings.Contains(out, "80 nodes") {
		t.Errorf("scenario not applied:\n%s", out)
	}
}

func TestCLIPeasReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	simBin := buildTool(t, "cmd/peas-sim")
	replayBin := buildTool(t, "cmd/peas-replay")
	traceOut := filepath.Join(t.TempDir(), "trace.jsonl")
	runTool(t, simBin, "-n", "80", "-horizon", "400", "-trace", traceOut)

	out := runTool(t, replayBin, "-in", traceOut, "-deaths")
	for _, want := range []string{"events spanning", "working nodes over time", "state"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIPeasBench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "cmd/peas-bench")
	out := runTool(t, bin, "-exp", "density")
	if !strings.Contains(out, "Lemma 3.1") {
		t.Errorf("bench output:\n%s", out)
	}
	// CSV format.
	out = runTool(t, bin, "-exp", "density", "-format", "csv")
	if !strings.Contains(out, "nodes,") {
		t.Errorf("csv output:\n%s", out)
	}
	// JSON format.
	out = runTool(t, bin, "-exp", "estimator", "-format", "json")
	if !strings.Contains(out, `"columns"`) {
		t.Errorf("json output:\n%s", out)
	}
}

func TestCLIPeasNodeGen(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "cmd/peas-node")
	peers := filepath.Join(t.TempDir(), "peers.json")
	out := runTool(t, bin, "-gen", "5", "-field", "12", "-base-port", "44100", "-peers", peers)
	if !strings.Contains(out, "wrote 5 peers") {
		t.Errorf("gen output:\n%s", out)
	}
	data, err := os.ReadFile(peers)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "44104") {
		t.Errorf("peer table missing last port:\n%s", data)
	}
}
