// Command peas-replay inspects a JSONL event trace written by
// peas-sim -trace: it prints a summary, the working-population timeline,
// and optionally the death record.
//
//	peas-sim -n 480 -trace trace.jsonl
//	peas-replay -in trace.jsonl -deaths
package main

import (
	"flag"
	"fmt"
	"os"

	"peas/internal/buildinfo"
	"peas/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peas-replay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in     = flag.String("in", "trace.jsonl", "trace file to read")
		deaths = flag.Bool("deaths", false, "list every death event")
		width  = flag.Int("width", 60, "timeline chart width")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("peas-replay"))
		return nil
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}

	// Summary by kind.
	byKind := map[trace.Kind]int{}
	var first, last float64
	for i, ev := range events {
		byKind[ev.Kind]++
		if i == 0 {
			first = ev.T
		}
		last = ev.T
	}
	fmt.Printf("%d events spanning %.1f s - %.1f s\n", len(events), first, last)
	for _, kind := range []trace.Kind{trace.KindState, trace.KindPacket, trace.KindDeath, trace.KindReport, trace.KindCustom} {
		if n := byKind[kind]; n > 0 {
			fmt.Printf("  %-8s %d\n", kind, n)
		}
	}
	fmt.Println()

	tl := trace.Timeline(events)
	fmt.Print(trace.FormatTimeline(tl, *width))

	if *deaths {
		fmt.Println("\ndeaths:")
		for _, ev := range trace.DeathTimes(events) {
			fmt.Printf("  %9.1fs node %d (%s)\n", ev.T, ev.Node, ev.Detail)
		}
	}
	return nil
}
