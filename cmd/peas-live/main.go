// Command peas-live runs a live PEAS network in this process: every node
// is a goroutine over an in-memory or UDP transport, running the same
// protocol state machine as the simulator, with time compressed by the
// -scale factor. It prints working-set changes as they happen.
//
// Usage:
//
//	peas-live -n 40 -field 20 -scale 100 -duration 15s
//	peas-live -transport udp -n 20
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"peas"
	"peas/internal/buildinfo"
	"peas/internal/chaos"
	"peas/peasnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peas-live:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 40, "number of live nodes")
		fieldSize = flag.Float64("field", 20, "square field edge in meters")
		scale     = flag.Float64("scale", 100, "protocol seconds per real second")
		duration  = flag.Duration("duration", 15*time.Second, "how long to run (real time)")
		transport = flag.String("transport", "mem", "transport: mem or udp")
		kill      = flag.Duration("kill", 0, "after this real duration, kill all working nodes to exercise replacement (0 = never)")
		status    = flag.String("status", "", "serve cluster status JSON on this address (e.g. :8080)")
		chaosOn   = flag.Bool("chaos", false, "inject channel impairments (5% loss, 5% duplication, 20% delayed frames) and report fault counters at exit")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("peas-live"))
		return nil
	}

	var tr peasnet.Transport
	switch *transport {
	case "mem":
		tr = peasnet.NewInMemory()
	case "udp":
		tr = peasnet.NewUDPGroup()
	default:
		return fmt.Errorf("unknown transport %q", *transport)
	}
	defer func() { _ = tr.Close() }()

	var inj *peasnet.ChaosInjector
	if *chaosOn {
		ft, ok := tr.(peasnet.FaultTransport)
		if !ok {
			return fmt.Errorf("transport %q does not accept a fault injector", *transport)
		}
		channel := chaos.NewChannel(time.Now().UnixNano(), nil)
		channel.SetLoss(0.05)
		channel.SetDuplication(0.05)
		channel.SetDelay(0.2, 0.05)
		inj = peasnet.NewChaosInjector(channel, *scale)
		ft.SetFaultInjector(inj)
		defer func() {
			fmt.Println("chaos activity:")
			inj.With(func(c *chaos.Channel) {
				for _, name := range c.Counters().Names() {
					fmt.Printf("  %-14s %8d\n", name, c.Counters().Get(name))
				}
			})
			if d, ok := tr.(interface{ Dropped() uint64 }); ok {
				fmt.Printf("  %-14s %8d\n", "frames dropped", d.Dropped())
			}
		}()
	}

	cluster, err := peasnet.NewCluster(peasnet.ClusterConfig{
		Field:     peas.Field{Width: *fieldSize, Height: *fieldSize},
		N:         *n,
		Protocol:  peas.DefaultProtocolConfig(),
		TimeScale: *scale,
		Seed:      time.Now().UnixNano(),
		OnState: func(id int, s peas.State) {
			if s == peas.Working {
				fmt.Printf("%8s  node %3d -> working\n", time.Now().Format("15:04:05"), id)
			}
		},
	}, tr)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	if *status != "" {
		srv := &http.Server{Addr: *status, Handler: cluster.StatusHandler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "status server:", err)
			}
		}()
		defer func() { _ = srv.Close() }()
		fmt.Printf("status JSON on http://%s/\n", *status)
	}

	fmt.Printf("started %d nodes over %s transport (x%.0f time)\n", *n, *transport, *scale)
	cluster.Start()

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	deadline := time.After(*duration)
	var killTimer <-chan time.Time
	if *kill > 0 {
		killTimer = time.After(*kill)
	}
	for {
		select {
		case <-ticker.C:
			fmt.Printf("working: %d / %d\n", cluster.WorkingCount(), *n)
		case <-killTimer:
			killed := 0
			for _, nd := range cluster.Nodes {
				if nd.State() == peas.Working {
					nd.Stop()
					killed++
				}
			}
			fmt.Printf("killed %d working nodes; watching replacement...\n", killed)
			killTimer = nil
		case <-deadline:
			fmt.Printf("final working set: %d / %d\n", cluster.WorkingCount(), *n)
			return nil
		}
	}
}
