// Command peas-serve runs the simulation service: a long-lived HTTP
// control plane that accepts simulation, sweep and chaos-campaign jobs,
// executes them on a bounded worker pool, and serves results from a
// content-addressed cache keyed by the canonical encoding of the job
// configuration. Identical submissions coalesce onto one run; repeats
// are answered instantly with the recorded StateHash.
//
// Usage:
//
//	peas-serve -addr :8080 -workers 4 -queue 64
//	peas-serve -state-dir /var/lib/peas -drain 30s
//
// Endpoints:
//
//	POST /api/v1/jobs             submit a job (429 + Retry-After when full)
//	GET  /api/v1/jobs             list jobs
//	GET  /api/v1/jobs/{id}        job status + result
//	DELETE /api/v1/jobs/{id}      request cancellation (idempotent; parks a resumable checkpoint)
//	GET  /api/v1/jobs/{id}/events SSE lifecycle/progress stream
//	GET  /api/v1/results/{key}    cached result by content key
//	GET  /healthz                 liveness + build identity
//	GET  /metrics                 Prometheus text metrics
//
// On SIGINT/SIGTERM the server stops accepting work and drains: running
// jobs get -drain to finish; past the deadline they are checkpointed
// into -state-dir (when set) and resume bit-exactly on the next boot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"peas/internal/buildinfo"
	"peas/internal/durable"
	"peas/internal/jobqueue"
	"peas/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peas-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "queued-job capacity before submissions get 429")
		cacheCap  = flag.Int("cache", 1024, "result cache capacity (content-addressed entries)")
		stateDir  = flag.String("state-dir", "", "persist specs and drain checkpoints here (enables resume across restarts)")
		ckptEvery = flag.Float64("checkpoint-every", 250, "drain-checkpoint cadence in simulated seconds (with -state-dir)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for running jobs")
		watchdog  = flag.Duration("watchdog", 0, "stall window: preempt a running job whose engine makes no event progress for this long (0 = stall detection off; deadlines are always enforced)")
		durDelay  = flag.Duration("durable-delay", 0, "slow every state-store disk operation by this much (crash-soak test hook: widens the window a SIGKILL can land in)")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("peas-serve"))
		return nil
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	var fsys durable.FS
	if *durDelay > 0 {
		fsys = durable.Slow(nil, *durDelay)
	}
	pool := jobqueue.New(jobqueue.Config{
		Workers:         nWorkers,
		QueueDepth:      *queue,
		CacheCap:        *cacheCap,
		StateDir:        *stateDir,
		CheckpointEvery: *ckptEvery,
		StallWindow:     *watchdog,
		FS:              fsys,
	})
	if *stateDir != "" {
		n, err := pool.Recover()
		if err != nil {
			return fmt.Errorf("recovering persisted jobs: %w", err)
		}
		if n > 0 {
			log.Printf("recovered %d persisted job(s) from %s", n, *stateDir)
		}
		counters := pool.Stats().Counters
		if q := counters["jobs_quarantined"] + counters["checkpoints_quarantined"]; q > 0 {
			log.Printf("quarantined %d damaged state file group(s) into %s — inspect and remove manually",
				q, filepath.Join(*stateDir, jobqueue.QuarantineDir))
		}
	}
	pool.Start()

	// No global WriteTimeout: it would sever SSE streams mid-job. The
	// handler applies per-request write deadlines instead (rolling for
	// streams), so slow-client protection survives without breaking the
	// event feed.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(pool, nWorkers),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("%s listening on %s (%d workers, queue %d)",
			buildinfo.String("peas-serve"), *addr, nWorkers, *queue)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("received %s, draining (budget %s)", s, *drain)
	}

	// Stop the listener first so no new work arrives, then drain the
	// pool: jobs that outlive the budget are checkpointed (with
	// -state-dir) and resume on the next boot.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	if err := pool.Shutdown(drainCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("drain deadline passed; long-running jobs suspended")
			return nil
		}
		return err
	}
	log.Printf("drained cleanly")
	return nil
}
