// Command peas-node runs a single live PEAS node in its own process,
// joining a network of sibling processes over UDP through a shared peer
// table. It demonstrates that the protocol deploys across real process
// and network boundaries with no shared state beyond addressing.
//
// Generate a peer table, then start one process per node:
//
//	peas-node -gen 12 -field 15 -base-port 42000 -peers peers.json
//	for i in $(seq 0 11); do peas-node -id $i -peers peers.json & done
//
// Each process prints its node's state transitions and a final summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"peas"
	"peas/internal/buildinfo"
	"peas/peasnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peas-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gen       = flag.Int("gen", 0, "generate a peer table for this many nodes and exit")
		field     = flag.Float64("field", 15, "square field edge in meters (with -gen)")
		basePort  = flag.Int("base-port", 42000, "first UDP port (with -gen)")
		peersPath = flag.String("peers", "peers.json", "peer table path")
		id        = flag.Int("id", -1, "this node's id in the peer table")
		scale     = flag.Float64("scale", 100, "protocol seconds per real second")
		duration  = flag.Duration("duration", 20*time.Second, "how long to run (real time)")
		seed      = flag.Int64("seed", 0, "node RNG seed (0 derives from id)")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("peas-node"))
		return nil
	}

	if *gen > 0 {
		return generate(*gen, *field, *basePort, *peersPath)
	}
	if *id < 0 {
		return fmt.Errorf("either -gen N or -id N is required")
	}

	peers, err := peasnet.ReadPeersFile(*peersPath)
	if err != nil {
		return err
	}
	var self *peasnet.PeerInfo
	for i := range peers {
		if peers[i].ID == *id {
			self = &peers[i]
			break
		}
	}
	if self == nil {
		return fmt.Errorf("node %d not in %s", *id, *peersPath)
	}

	transport, err := peasnet.NewUDPPeer(*id, peers)
	if err != nil {
		return err
	}
	defer func() { _ = transport.Close() }()

	node, err := peasnet.NewNode(peasnet.Config{
		ID:        *id,
		Pos:       peas.Point{X: self.X, Y: self.Y},
		Protocol:  peas.DefaultProtocolConfig(),
		TimeScale: *scale,
		Seed:      *seed,
		OnState: func(nodeID int, s peas.State) {
			fmt.Printf("%s node %d -> %v\n", time.Now().Format("15:04:05.000"), nodeID, s)
		},
	}, transport)
	if err != nil {
		return err
	}
	defer node.Stop()

	fmt.Printf("node %d at (%.1f, %.1f), %d peers, x%.0f time\n",
		*id, self.X, self.Y, len(peers)-1, *scale)
	node.Start()
	time.Sleep(*duration)

	stats := node.Stats()
	fmt.Printf("node %d final: state=%v wakeups=%d probes=%d replies=%d\n",
		*id, node.State(), stats.Wakeups, stats.ProbesSent, stats.RepliesSent)
	return nil
}

// generate writes a uniform deployment peer table.
func generate(n int, field float64, basePort int, path string) error {
	peers := make([]peasnet.PeerInfo, 0, n)
	// A deterministic low-discrepancy placement keeps -gen reproducible
	// without flags: Halton-like spread over the square.
	for i := 0; i < n; i++ {
		peers = append(peers, peasnet.PeerInfo{
			ID:   i,
			Addr: "127.0.0.1:" + strconv.Itoa(basePort+i),
			X:    halton(i+1, 2) * field,
			Y:    halton(i+1, 3) * field,
		})
	}
	if err := peasnet.WritePeersFile(path, peers); err != nil {
		return err
	}
	fmt.Printf("wrote %d peers to %s (ports %d-%d)\n", n, path, basePort, basePort+n-1)
	return nil
}

// halton returns the i-th element of the Halton sequence in base b.
func halton(i, b int) float64 {
	f, r := 1.0, 0.0
	for i > 0 {
		f /= float64(b)
		r += f * float64(i%b)
		i /= b
	}
	return r
}
