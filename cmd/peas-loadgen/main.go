// Command peas-loadgen is the deterministic load generator and soak
// harness of the simulation service. It synthesizes a seeded workload —
// job specs with a tunable duplicate-key ratio, an SSE-follow fraction
// and a chaos fraction — drives a peas-serve instance with it in
// closed-loop (fixed concurrency) or open-loop (fixed arrival rate)
// mode, and emits a machine-readable JSON report with pass/fail SLO
// assertions: zero lost jobs, hash consistency, observed cache-hit +
// coalesce rate within tolerance of the planned mix, and optional
// latency bounds.
//
// Usage:
//
//	peas-loadgen -url http://127.0.0.1:8080 -jobs 200 -dup 0.3
//	peas-loadgen -mode open -rate 100 -follow 0.5 -max-e2e-p99 2
//	peas-loadgen -cancel 0.4 -hang-jobs 3 -deadline-jobs 2 -check-leaks
//	peas-loadgen -soak -serve-bin ./peas-serve -cycles 3 -state-dir /tmp/peas-soak
//
// Two invocations with the same -seed submit the identical multiset of
// content keys (the report's keyMultisetHash), which is what makes the
// observed duplicate rate assertable.
//
// In -soak mode the harness manages its own peas-serve child: every
// cycle but the last SIGTERMs the server while long-horizon jobs are
// running, forcing checkpoint-suspend; the next cycle verifies the
// recovered jobs resume and reproduce the independently computed
// reference StateHash. The process exits 0 iff the report passes.
//
// In -soak-kill9 mode there is no mercy: every cycle but the last
// SIGKILLs the managed server at seeded points mid-run — a seeded
// delay into the submission storm, or right as drain-checkpoint files
// start appearing, with -durable-delay widening the window so kills
// land inside durable writes. Every boot must account for every spec
// file present at kill time (recovered + quarantined), resumed jobs
// must reproduce the reference StateHash, and injected-panic jobs must
// land in failed without taking the worker pool down.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"peas/internal/buildinfo"
	"peas/internal/client"
	"peas/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peas-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url     = flag.String("url", "http://127.0.0.1:8080", "service base URL (plain load mode)")
		out     = flag.String("out", "", "write the JSON report here instead of stdout")
		version = flag.Bool("version", false, "print version and exit")

		// Workload mix.
		seed    = flag.Int64("seed", 1, "workload seed; equal seeds submit equal key multisets")
		jobs    = flag.Int("jobs", 100, "submissions per run")
		dup     = flag.Float64("dup", 0.3, "duplicate-key ratio (target coalesce+cache-hit rate)")
		follow  = flag.Float64("follow", 0.5, "fraction of jobs followed over SSE instead of polled")
		chaosFr = flag.Float64("chaos", 0.1, "fraction of fresh specs carrying a chaos plan")
		n       = flag.Int("n", 40, "deployment size per job")
		horizon = flag.Float64("horizon", 600, "simulated seconds per job")

		// Cancellation-storm knobs. -cancel draws a seeded fraction of
		// unambiguous jobs for cancellation at random lifecycle points;
		// -hang-jobs and -deadline-jobs inject wedged and unmeetable-budget
		// work whose containment the report asserts (pair -hang-jobs with a
		// peas-serve -watchdog stall window).
		cancelFr     = flag.Float64("cancel", 0, "fraction of jobs cancelled at seeded lifecycle points")
		hangJobs     = flag.Int("hang-jobs", 0, "injected-hang jobs, each expected to be watchdog-preempted")
		deadlineJobs = flag.Int("deadline-jobs", 0, "unmeetable-deadline jobs, each expected to be deadline-enforced")
		checkLeaks   = flag.Bool("check-leaks", false, "assert post-run service hygiene: drained pool, no goroutine growth")

		// Drive mode.
		mode       = flag.String("mode", loadgen.ModeClosed, "closed (fixed concurrency) or open (fixed arrival rate)")
		conc       = flag.Int("concurrency", 8, "closed-loop concurrent submitters")
		rate       = flag.Float64("rate", 50, "open-loop arrival rate in jobs/s")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-job end-to-end budget")
		retries    = flag.Int("retries", 4, "max submit attempts per job on 429")

		// SLO gates.
		maxSubmitP99 = flag.Float64("max-submit-p99", 0, "submit-latency p99 bound in seconds (0 = off)")
		maxE2EP99    = flag.Float64("max-e2e-p99", 0, "end-to-end latency p99 bound in seconds (0 = off)")
		dupTol       = flag.Float64("dup-tol", 0.02, "allowed |observed - planned| duplicate-rate deviation")

		// Soak modes.
		soak      = flag.Bool("soak", false, "run drain/restart soak cycles against a managed peas-serve")
		soakKill9 = flag.Bool("soak-kill9", false, "run SIGKILL crash-soak cycles against a managed peas-serve")
		serveBin  = flag.String("serve-bin", "", "peas-serve binary path (required with -soak/-soak-kill9)")
		stateDir  = flag.String("state-dir", "", "server state dir for drain persistence (default: temp dir)")
		addr      = flag.String("addr", "127.0.0.1:18742", "managed server listen address (-soak/-soak-kill9)")
		cycles    = flag.Int("cycles", 2, "soak submit cycles; all but the last end in a mid-run drain or kill")
		longJobs  = flag.Int("long-jobs", 2, "long-horizon drain-victim jobs appended to the plan (-soak/-soak-kill9)")
		panicJobs = flag.Int("panic-jobs", 1, "injected-panic jobs in the plan, expected to fail in isolation (-soak-kill9)")
		drain     = flag.Duration("drain", 150*time.Millisecond, "managed server drain budget; short so long jobs suspend (-soak/-soak-kill9)")
		ckptEvery = flag.Float64("checkpoint-every", 50, "managed server drain-checkpoint cadence in simulated seconds (-soak/-soak-kill9)")
		killSeed  = flag.Int64("kill-seed", 1, "seed for the SIGKILL timing choreography (-soak-kill9)")
		durDelay  = flag.Duration("durable-delay", 2*time.Millisecond, "managed server per-disk-op delay, widening the kill window (-soak-kill9)")
		verbose   = flag.Bool("v", false, "stream harness and server logs to stderr")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("peas-loadgen"))
		return nil
	}

	cfg := loadgen.Config{
		Mix: loadgen.Mix{
			Seed:           *seed,
			Jobs:           *jobs,
			DuplicateRatio: *dup,
			FollowFraction: *follow,
			ChaosFraction:  *chaosFr,
			N:              *n,
			Horizon:        *horizon,
			RateHz:         *rate,
			CancelFraction: *cancelFr,
			HangJobs:       *hangJobs,
			DeadlineJobs:   *deadlineJobs,
		},
		Mode:        *mode,
		Concurrency: *conc,
		Retry:       client.RetryPolicy{MaxAttempts: *retries},
		JobTimeout:  *jobTimeout,
		SLO: loadgen.SLO{
			MaxSubmitP99Seconds:    *maxSubmitP99,
			MaxE2EP99Seconds:       *maxE2EP99,
			DuplicateRateTolerance: *dupTol,
			CheckLeaks:             *checkLeaks,
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var report any
	var pass bool
	if *soak || *soakKill9 {
		if *soak && *soakKill9 {
			return fmt.Errorf("-soak and -soak-kill9 are mutually exclusive")
		}
		if *serveBin == "" {
			return fmt.Errorf("-soak/-soak-kill9 requires -serve-bin (build it with: go build ./cmd/peas-serve)")
		}
		dir := *stateDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "peas-soak-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		server := loadgen.ServerProc{
			Bin:             *serveBin,
			Addr:            *addr,
			StateDir:        dir,
			DrainBudget:     *drain,
			CheckpointEvery: *ckptEvery,
		}
		if *soakKill9 {
			server.DurableDelay = *durDelay
			kc := loadgen.Kill9Config{
				Server:   server,
				Cycles:   *cycles,
				Load:     cfg,
				KillSeed: *killSeed,
			}
			kc.Load.Mix.LongJobs = *longJobs
			kc.Load.Mix.PanicJobs = *panicJobs
			if *verbose {
				kc.Log = os.Stderr
				kc.Server.Log = os.Stderr
			}
			rep, err := loadgen.SoakKill9(ctx, kc)
			if err != nil {
				return err
			}
			report, pass = rep, rep.Pass
		} else {
			sc := loadgen.SoakConfig{
				Server: server,
				Cycles: *cycles,
				Load:   cfg,
			}
			sc.Load.Mix.LongJobs = *longJobs
			if *verbose {
				sc.Log = os.Stderr
				sc.Server.Log = os.Stderr
			}
			rep, err := loadgen.Soak(ctx, sc)
			if err != nil {
				return err
			}
			report, pass = rep, rep.Pass
		}
	} else {
		rep, err := loadgen.Run(ctx, *url, cfg)
		if err != nil {
			return err
		}
		report, pass = rep, rep.Pass
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(enc)
	}
	if !pass {
		return fmt.Errorf("SLO assertions failed (see report)")
	}
	return nil
}
