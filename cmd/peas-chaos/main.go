// Command peas-chaos runs scripted fault-injection campaigns against the
// PEAS reproduction, on either substrate:
//
// Simulator mode (default) runs a fault-free baseline and a chaos run of
// the same deployment under the runtime invariant oracle, prints the
// per-fault-class activity counters, and emits a degradation report —
// coverage, working-set size and probe convergence under faults versus
// the baseline — checking the §5.2 expectation that PEAS degrades
// gracefully rather than collapsing.
//
// Live mode (-live) boots goroutine nodes over an in-memory transport
// with channel impairments injected on the broadcast path, then
// crash-restarts a working node from its supervised checkpoint and
// verifies it resumes (not reboots) and rejoins the working set.
//
// Usage:
//
//	peas-chaos -n 160 -seed 1 -horizon 2500 -plan mixed
//	peas-chaos -plan campaign.json -strict
//	peas-chaos -determinism
//	peas-chaos -live -scale 150 -duration 12s
//
// -strict turns unexercised fault classes, oracle violations and
// envelope breaches into a non-zero exit, which is what the CI chaos
// soak runs. -determinism runs the campaign twice and requires
// bit-identical final state hashes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"peas"
	"peas/internal/buildinfo"
	"peas/internal/chaos"
	"peas/internal/core"
	"peas/internal/metrics"
	"peas/peasnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peas-chaos:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 160, "number of deployed nodes (sim mode)")
		seed     = flag.Int64("seed", 1, "campaign seed (deployment and fault RNG streams)")
		horizon  = flag.Float64("horizon", 2500, "simulated seconds (sim mode)")
		planArg  = flag.String("plan", "mixed", `fault plan: "mixed" (built-in, every class) or a JSON file path`)
		strict   = flag.Bool("strict", false, "exit non-zero on unexercised classes, oracle violations or an envelope breach")
		determ   = flag.Bool("determinism", false, "run the campaign twice and require identical final state hashes")
		live     = flag.Bool("live", false, "run the live-runtime campaign (crash-restart from checkpoint) instead of the simulator")
		liveN    = flag.Int("live-n", 40, "live mode: number of nodes")
		scale    = flag.Float64("scale", 150, "live mode: protocol seconds per real second")
		duration = flag.Duration("duration", 12*time.Second, "live mode: total real-time budget")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("peas-chaos"))
		return nil
	}

	if *live {
		return runLive(*liveN, *seed, *scale, *duration, *strict)
	}

	plan, err := loadPlan(*planArg, *horizon, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("campaign:             %s (%d events, %d classes), %d nodes, seed %d, %.0f s\n",
		plan.Name, len(plan.Events), len(plan.Classes()), *n, *seed, *horizon)

	if *determ {
		return runDeterminism(*n, *seed, *horizon, plan)
	}
	return runCampaign(*n, *seed, *horizon, plan, *strict)
}

// loadPlan resolves the -plan argument. A file plan without a seed
// inherits the campaign seed so the run stays reproducible.
func loadPlan(arg string, horizon float64, seed int64) (*chaos.Plan, error) {
	if arg == "mixed" {
		return chaos.MixedPlan(horizon, seed), nil
	}
	p, err := chaos.Load(arg)
	if err != nil {
		return nil, err
	}
	if p.Seed == 0 {
		p.Seed = seed
	}
	return p, nil
}

// runOne executes one oracle-instrumented run of the standard deployment,
// with scripted faults when plan is non-nil (and no other fault source,
// so the plan alone explains any degradation). It returns the run stats,
// the armed oracle, and the working-set time series for convergence
// analysis.
func runOne(n int, seed int64, horizon float64, plan *chaos.Plan, counters *metrics.Counters) (*peas.RunStats, *peas.InvariantChecker, *metrics.Series, error) {
	cfg := peas.DefaultRunConfig(n, seed)
	cfg.Horizon = horizon
	cfg.Forwarding = false
	cfg.FailuresPer5000s = 0
	cfg.Chaos = plan
	cfg.ChaosCounters = counters
	working := metrics.NewSeries("working")
	cfg.OnSample = func(t float64, w int, _ []float64) { working.Record(t, float64(w)) }
	var checker *peas.InvariantChecker
	cfg.OnNetwork = func(net *peas.Network) {
		checker = peas.AttachChecker(net, peas.DefaultInvariantConfig())
	}
	res, err := peas.Run(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, checker, working, nil
}

// convergence returns how long the working set took to first reach 90%
// of its steady (post-boot) mean — the probe-convergence metric of the
// degradation report.
func convergence(working *metrics.Series, steadyMean float64) (float64, bool) {
	return working.FirstAtLeast(0.9 * steadyMean)
}

func violationCount(c *peas.InvariantChecker) int {
	return len(c.Violations()) + c.Dropped()
}

func runCampaign(n int, seed int64, horizon float64, plan *chaos.Plan, strict bool) error {
	base, baseChecker, baseWorking, err := runOne(n, seed, horizon, nil, nil)
	if err != nil {
		return fmt.Errorf("baseline run: %w", err)
	}
	counters := metrics.NewCounters()
	res, checker, working, err := runOne(n, seed, horizon, plan, counters)
	if err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}

	fmt.Println("fault activity:")
	names := counters.Names()
	if len(names) == 0 {
		fmt.Println("  (none)")
	}
	for _, name := range names {
		fmt.Printf("  %-18s %8d\n", name, counters.Get(name))
	}
	var problems []string
	if missing := chaos.Unexercised(plan.Classes(), counters); len(missing) > 0 {
		problems = append(problems, fmt.Sprintf("unexercised fault classes: %v", missing))
	} else {
		fmt.Println("unexercised classes:  none (every planned class fired and was counted)")
	}

	baseConv, _ := convergence(baseWorking, base.MeanWorking)
	chaosConv, _ := convergence(working, res.MeanWorking)
	fmt.Println("degradation report (chaos vs fault-free baseline):")
	fmt.Printf("  initial 1-coverage:  %.4f vs %.4f\n", res.InitialCoverage[0], base.InitialCoverage[0])
	fmt.Printf("  mean working nodes:  %.1f vs %.1f\n", res.MeanWorking, base.MeanWorking)
	fmt.Printf("  1-coverage lifetime: %.0f s vs %.0f s (dropped=%v/%v)\n",
		res.CoverageLifetime[0], base.CoverageLifetime[0],
		res.CoverageDropped[0], base.CoverageDropped[0])
	fmt.Printf("  probe convergence:   %.0f s vs %.0f s to reach 90%% of steady working set\n",
		chaosConv, baseConv)
	fmt.Printf("  node faults:         %d injected (fail-stop %d, transient %d, crash-restart %d)\n",
		counters.Get(chaos.CtrFailStop)+counters.Get(chaos.CtrFailRecover)+counters.Get(chaos.CtrCrash),
		counters.Get(chaos.CtrFailStop), counters.Get(chaos.CtrFailRecover), counters.Get(chaos.CtrCrash))
	fmt.Printf("  oracle violations:   %d (baseline %d)\n", violationCount(checker), violationCount(baseChecker))
	for _, v := range checker.Violations() {
		fmt.Printf("    %s\n", v)
	}

	// The §5.2 envelope: under faults the sensing service must degrade
	// gracefully — coverage holds near the fault-free level while the
	// faults are live, and the coverage lifetime stays within half the
	// baseline rather than collapsing.
	if res.InitialCoverage[0] < 0.9*base.InitialCoverage[0] {
		problems = append(problems, fmt.Sprintf("initial coverage %.4f fell below 90%% of baseline %.4f",
			res.InitialCoverage[0], base.InitialCoverage[0]))
	}
	if res.CoverageLifetime[0] < 0.5*base.CoverageLifetime[0] {
		problems = append(problems, fmt.Sprintf("coverage lifetime collapsed: %.0f s vs baseline %.0f s",
			res.CoverageLifetime[0], base.CoverageLifetime[0]))
	}
	if violationCount(checker) > 0 || violationCount(baseChecker) > 0 {
		problems = append(problems, "runtime invariant oracle reported violations")
	}

	if len(problems) == 0 {
		fmt.Println("envelope check:       OK (coverage within the §5.2 graceful-degradation envelope)")
		return nil
	}
	for _, p := range problems {
		fmt.Printf("problem:              %s\n", p)
	}
	if strict {
		return fmt.Errorf("%d problem(s) in strict mode", len(problems))
	}
	return nil
}

// runDeterminism executes the identical campaign twice and compares final
// state hashes: scripted chaos must be a pure function of plan + seed.
func runDeterminism(n int, seed int64, horizon float64, plan *chaos.Plan) error {
	var hashes [2]string
	for i := range hashes {
		cfg := peas.DefaultRunConfig(n, seed)
		cfg.Horizon = horizon
		cfg.Forwarding = false
		cfg.FailuresPer5000s = 0
		cfg.Chaos = plan
		cfg.CaptureFinal = true
		res, err := peas.Run(cfg)
		if err != nil {
			return err
		}
		hashes[i] = res.FinalState.StateHashHex()
		fmt.Printf("run %d final hash:     %s\n", i+1, hashes[i])
	}
	if hashes[0] != hashes[1] {
		return fmt.Errorf("campaign is not deterministic: final state hashes differ")
	}
	fmt.Println("determinism:          OK (same plan + seed => identical final state)")
	return nil
}

// runLive exercises the live substrate: channel impairments on the
// broadcast path plus a supervised crash-restart of a working node, which
// must resume from its checkpoint (keeping its protocol history) and
// rejoin the working set.
// awaitRoughStable waits until the working count stays within ±tol of a
// reference value for the settle duration, re-anchoring on larger moves.
func awaitRoughStable(c *peasnet.Cluster, tol int, settle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	ref := c.WorkingCount()
	since := time.Now()
	for time.Now().Before(deadline) {
		cur := c.WorkingCount()
		diff := cur - ref
		if diff < 0 {
			diff = -diff
		}
		if cur == 0 || diff > tol {
			ref = cur
			since = time.Now()
		} else if time.Since(since) >= settle {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

func runLive(n int, seed int64, scale float64, budget time.Duration, strict bool) error {
	counters := metrics.NewCounters()
	channel := chaos.NewChannel(seed, counters)
	channel.SetLoss(0.05)
	channel.SetDuplication(0.05)
	channel.SetDelay(0.2, 0.05)
	inj := peasnet.NewChaosInjector(channel, scale)

	tr := peasnet.NewInMemory()
	tr.SetFaultInjector(inj)
	cluster, err := peasnet.NewCluster(peasnet.ClusterConfig{
		Field:     peas.Field{Width: 20, Height: 20},
		N:         n,
		Protocol:  peas.DefaultProtocolConfig(),
		TimeScale: scale,
		Seed:      seed,
		Battery:   &peasnet.BatteryConfig{Joules: 500},
	}, tr)
	if err != nil {
		_ = tr.Close()
		return err
	}
	defer func() { _ = tr.Close() }()
	defer cluster.Stop()

	stopSup := cluster.Supervise(300 * time.Millisecond)
	defer stopSup()
	cluster.Start()
	fmt.Printf("live cluster:         %d nodes, x%.0f time, loss 5%% + dup 5%% + delay 20%%\n", n, scale)

	// Under live impairments the working set hovers around its steady
	// size rather than freezing (loss and duplication keep a trickle of
	// wakeups and turn-offs going), so stabilization is judged with a
	// small tolerance instead of Cluster.AwaitStable's exact match.
	settle := budget / 8
	if !awaitRoughStable(cluster, 3, settle, budget/2) {
		return fmt.Errorf("working set did not stabilize within %v", budget/2)
	}
	before := cluster.WorkingCount()
	fmt.Printf("stable working set:   %d nodes\n", before)

	// Crash-restart one working node from its supervised checkpoint.
	victim := -1
	var pre core.Stats
	for _, nd := range cluster.Nodes {
		if nd.State() == peas.Working {
			victim = nd.ID()
			pre = nd.Stats()
			break
		}
	}
	if victim < 0 {
		return fmt.Errorf("no working node to crash")
	}
	down := budget / 12
	fmt.Printf("crash-restart:        node %d (working), downtime %v\n", victim, down)
	inj.With(func(c *chaos.Channel) { c.Counters().Add(chaos.CtrCrash, 1) })
	if err := cluster.CrashRestart(victim, down); err != nil {
		return err
	}
	inj.With(func(c *chaos.Channel) { c.Counters().Add(chaos.CtrRestarted, 1) })

	var restarted *peasnet.Node
	for _, nd := range cluster.Nodes {
		if nd.ID() == victim {
			restarted = nd
		}
	}
	post := restarted.Stats()
	resumed := restarted.State() == core.Working &&
		post.Wakeups >= pre.Wakeups && post.ProbesSent >= pre.ProbesSent
	fmt.Printf("restarted node %d:     state=%v wakeups=%d (pre-crash %d) probes=%d (pre-crash %d)\n",
		victim, restarted.State(), post.Wakeups, pre.Wakeups, post.ProbesSent, pre.ProbesSent)
	if !resumed {
		if strict {
			return fmt.Errorf("node %d rebooted fresh instead of resuming its checkpoint", victim)
		}
		fmt.Println("problem:              node rebooted fresh instead of resuming its checkpoint")
	} else {
		fmt.Println("resume check:         OK (protocol history carried across the restart)")
	}
	if !awaitRoughStable(cluster, 3, settle, budget/2) {
		return fmt.Errorf("working set did not restabilize after the restart")
	}
	fmt.Printf("restabilized:         %d working nodes (was %d)\n", cluster.WorkingCount(), before)

	var names []string
	snap := map[string]uint64{}
	inj.With(func(c *chaos.Channel) {
		names = c.Counters().Names()
		snap = c.Counters().Snapshot()
	})
	fmt.Println("fault activity:")
	for _, name := range names {
		fmt.Printf("  %-18s %8d\n", name, snap[name])
	}
	fmt.Printf("transport drops:      %d frames\n", tr.Dropped())
	if strict {
		for _, want := range []string{chaos.CtrDropLoss, chaos.CtrDup, chaos.CtrDelay} {
			if snap[want] == 0 {
				return fmt.Errorf("fault class %q never fired on the live transport", want)
			}
		}
	}
	return nil
}
