// Command peas-bench regenerates the paper's evaluation: every figure and
// table of §5 plus the §2-§4 analyses, printed as text tables.
//
// Usage:
//
//	peas-bench                  # everything, paper-scale (5 runs/point)
//	peas-bench -exp fig9        # one experiment
//	peas-bench -runs 1 -quick   # fast pass (1 run/point, coarser sweeps)
//
// Regression gate (used by CI): runs a fixed deterministic scenario set
// and compares work counters (engine events, packets, wakeups), the
// allocation rate (heap objects per executed event, gated at
// -allocs-tolerance, default 0: any increase fails) and wall time (gated
// at -wall-tolerance, default 10%; negative makes it advisory) against a
// committed baseline.
//
//	peas-bench -quick -baseline BENCH_baseline.json -write-baseline
//	peas-bench -quick -baseline BENCH_baseline.json -tolerance 0.25
//
// Profiling: -cpuprofile and -memprofile write pprof profiles covering
// the whole invocation (gate or experiments); see DESIGN.md §9.
//
// Experiments: fig9 fig10 fig11 table1 fig12 fig13 fig14 estimator
// connectivity gaps loss turnoff distribution fixedpower rpsweep boot
// density mesh grabcheck irregularity tracking deviation threed all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"peas"
	"peas/internal/buildinfo"
	"peas/internal/perf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peas-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig9..fig14, table1, estimator, connectivity, gaps, loss, turnoff, distribution, fixedpower, rpsweep, boot, density, mesh, grabcheck, irregularity, tracking, deviation, threed, all)")
		runs     = flag.Int("runs", 5, "independent runs per sweep point")
		seed     = flag.Int64("seed", 1, "root seed")
		quick    = flag.Bool("quick", false, "coarser sweeps for a fast pass")
		format   = flag.String("format", "text", "output format: text, csv, json or md")
		parallel = flag.Int("parallel", 0, "concurrent simulations in sweeps (0 = all CPUs)")

		baseline  = flag.String("baseline", "", "regression-gate mode: baseline JSON to compare against (or write with -write-baseline)")
		tolerance = flag.Float64("tolerance", 0.25, "maximum allowed relative regression of a gate work counter")
		allocsTol = flag.Float64("allocs-tolerance", 0, "maximum allowed relative regression of allocs per event (0 = any increase fails)")
		wallTol   = flag.Float64("wall-tolerance", 0.10, "maximum allowed relative wall-time regression (negative = advisory only)")
		writeBase = flag.Bool("write-baseline", false, "measure the gate scenarios and write -baseline instead of comparing")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("peas-bench"))
		return nil
	}

	if *cpuProfile != "" {
		stop, err := perf.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "peas-bench:", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := perf.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "peas-bench:", err)
			}
		}()
	}

	if *baseline != "" {
		tol := gateTolerances{counters: *tolerance, allocs: *allocsTol, wall: *wallTol}
		return runGate(*baseline, tol, *writeBase, *quick)
	}

	emit := func(t *peas.Table) error {
		switch *format {
		case "text":
			fmt.Println(t)
			return nil
		case "csv":
			return t.WriteCSV(os.Stdout, true)
		case "json":
			return t.WriteJSON(os.Stdout)
		case "md", "markdown":
			return t.WriteMarkdown(os.Stdout)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}

	opts := peas.DefaultSweepOptions()
	opts.Runs = *runs
	opts.Seed = *seed
	opts.Parallel = *parallel
	if *quick {
		opts.Deployments = []int{160, 480, 800}
		opts.FailureRates = []float64{5.33, 26.66, 48}
	}

	want := func(ids ...string) bool {
		if *exp == "all" {
			return true
		}
		for _, id := range ids {
			if strings.EqualFold(id, *exp) {
				return true
			}
		}
		return false
	}

	start := time.Now()
	if want("fig9", "fig10", "fig11", "table1") {
		res, err := peas.DeploymentSweep(opts)
		if err != nil {
			return err
		}
		if want("fig9") {
			if err := emit(res.Fig9()); err != nil {
				return err
			}
		}
		if want("fig10") {
			if err := emit(res.Fig10()); err != nil {
				return err
			}
		}
		if want("fig11") {
			if err := emit(res.Fig11()); err != nil {
				return err
			}
		}
		if want("table1") {
			if err := emit(res.Table1()); err != nil {
				return err
			}
		}
	}
	if want("fig12", "fig13", "fig14") {
		res, err := peas.FailureSweep(opts)
		if err != nil {
			return err
		}
		if want("fig12") {
			if err := emit(res.Fig12()); err != nil {
				return err
			}
		}
		if want("fig13") {
			if err := emit(res.Fig13()); err != nil {
				return err
			}
		}
		if want("fig14") {
			if err := emit(res.Fig14()); err != nil {
				return err
			}
		}
	}
	if want("estimator") {
		if err := emit(peas.EstimatorStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("connectivity") {
		seeds := 5
		if *quick {
			seeds = 2
		}
		if err := emit(peas.ConnectivityStudy(seeds, opts.Seed)); err != nil {
			return err
		}
	}
	if want("gaps") {
		seeds := 3
		if *quick {
			seeds = 1
		}
		if err := emit(peas.GapStudy(seeds, opts.Seed)); err != nil {
			return err
		}
	}
	if want("loss") {
		if err := emit(peas.LossStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("turnoff") {
		if err := emit(peas.TurnoffStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("distribution") {
		if err := emit(peas.DeploymentDistributionStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("fixedpower") {
		if err := emit(peas.FixedPowerStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("rpsweep") {
		if err := emit(peas.RpSweepStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("boot") {
		if err := emit(peas.BootStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("mesh") {
		if err := emit(peas.MeshStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("grabcheck") {
		if err := emit(peas.GrabCheckStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("irregularity") {
		if err := emit(peas.IrregularityStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("tracking") {
		if err := emit(peas.TrackingStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("deviation") {
		if err := emit(peas.DeviationStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("threed") {
		if err := emit(peas.ThreeDStudy(opts.Seed)); err != nil {
			return err
		}
	}
	if want("density") {
		if err := emit(peas.DensityStudy(opts.Seed)); err != nil {
			return err
		}
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
