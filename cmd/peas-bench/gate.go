package main

// Benchmark regression gate.
//
// CI cannot gate on wall time — shared runners are too noisy for a 25%
// threshold to mean anything — so the primary regression metrics are the
// deterministic work counters of a fixed scenario set: engine events
// executed, packets broadcast and protocol wakeups. Those are pure
// functions of (config, seed); a change that makes the simulator do more
// work (timer churn, retransmission storms, extra sweeps) moves them
// reproducibly on every machine. Wall time is still measured and reported,
// but only advisorily.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"peas"
)

type gateMetrics struct {
	// Deterministic counters: identical for identical behavior.
	Events  uint64 `json:"events"`
	Packets uint64 `json:"packets"`
	Wakeups uint64 `json:"wakeups"`
	// WallNS is advisory only (never fails the gate).
	WallNS int64 `json:"wall_ns"`
}

type gateBaseline struct {
	// Mode records whether the baseline was measured with -quick; the
	// scenario horizons differ, so comparing across modes is meaningless.
	Mode      string                 `json:"mode"`
	Scenarios map[string]gateMetrics `json:"scenarios"`
}

type gateScenario struct {
	name string
	cfg  peas.RunConfig
}

// gateScenarios is the fixed workload set. Horizons are explicit (never
// the deployment-proportional default) so the work counted is pinned.
func gateScenarios(quick bool) []gateScenario {
	h := func(full, short float64) float64 {
		if quick {
			return short
		}
		return full
	}
	protocol := peas.DefaultRunConfig(160, 1)
	protocol.Forwarding = false
	protocol.FailuresPer5000s = 0
	protocol.Horizon = h(4000, 1500)

	baseline := peas.DefaultRunConfig(320, 2)
	baseline.Horizon = h(3000, 1200)

	failures := peas.DefaultRunConfig(480, 3)
	failures.FailuresPer5000s = 26.66
	failures.Horizon = h(2500, 1000)

	return []gateScenario{
		{"protocol-160", protocol},
		{"baseline-320", baseline},
		{"failures-480", failures},
	}
}

func measureGate(quick bool) (*gateBaseline, error) {
	mode := "full"
	if quick {
		mode = "quick"
	}
	out := &gateBaseline{Mode: mode, Scenarios: map[string]gateMetrics{}}
	for _, sc := range gateScenarios(quick) {
		cfg := sc.cfg
		var net *peas.Network
		cfg.OnNetwork = func(n *peas.Network) { net = n }
		start := time.Now()
		res, err := peas.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		m := gateMetrics{
			Events:  net.Engine.Executed(),
			Packets: res.PacketsSent,
			Wakeups: res.Wakeups,
			WallNS:  time.Since(start).Nanoseconds(),
		}
		out.Scenarios[sc.name] = m
		fmt.Printf("%-14s events=%-9d packets=%-8d wakeups=%-7d wall=%s\n",
			sc.name, m.Events, m.Packets, m.Wakeups,
			time.Duration(m.WallNS).Round(time.Millisecond))
	}
	return out, nil
}

// runGate measures the scenario set and either writes the baseline file
// (write=true) or compares against it, returning an error if any
// deterministic counter regressed by more than tolerance.
func runGate(path string, tolerance float64, write, quick bool) error {
	current, err := measureGate(quick)
	if err != nil {
		return err
	}
	if write {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline written to %s (mode=%s)\n", path, current.Mode)
		return nil
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline (generate one with -write-baseline): %w", err)
	}
	var base gateBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if base.Mode != current.Mode {
		return fmt.Errorf("baseline %s was measured in %s mode, this run is %s mode; match the -quick flag or regenerate with -write-baseline",
			path, base.Mode, current.Mode)
	}

	names := make([]string, 0, len(base.Scenarios))
	for name := range base.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		b := base.Scenarios[name]
		c, ok := current.Scenarios[name]
		if !ok {
			return fmt.Errorf("scenario %s is in the baseline but no longer measured; regenerate with -write-baseline", name)
		}
		check := func(metric string, baseV, curV uint64) {
			if baseV == 0 {
				return
			}
			ratio := float64(curV) / float64(baseV)
			switch {
			case ratio > 1+tolerance:
				regressions = append(regressions, fmt.Sprintf(
					"%s %s: %d -> %d (%+.1f%%, limit %+.0f%%)",
					name, metric, baseV, curV, 100*(ratio-1), 100*tolerance))
			case ratio < 1-tolerance:
				fmt.Printf("note: %s %s improved %d -> %d (%.1f%%); consider refreshing the baseline\n",
					name, metric, baseV, curV, 100*(ratio-1))
			}
		}
		check("events", b.Events, c.Events)
		check("packets", b.Packets, c.Packets)
		check("wakeups", b.Wakeups, c.Wakeups)
		if b.WallNS > 0 {
			wall := float64(c.WallNS) / float64(b.WallNS)
			if wall > 1+tolerance {
				fmt.Printf("note: %s wall time %.2fx baseline (advisory only, not gated)\n", name, wall)
			}
		}
	}
	for name := range current.Scenarios {
		if _, ok := base.Scenarios[name]; !ok {
			return fmt.Errorf("scenario %s has no baseline entry; regenerate with -write-baseline", name)
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark counter(s) regressed beyond %.0f%%", len(regressions), 100*tolerance)
	}
	fmt.Printf("bench gate: OK (%d scenarios within %.0f%% of %s)\n", len(names), 100*tolerance, path)
	return nil
}
