package main

// Benchmark regression gate.
//
// The primary regression metrics are deterministic quantities of a fixed
// scenario set: the work counters (engine events executed, packets
// broadcast, protocol wakeups) and the allocation rate (heap objects
// allocated per executed event). All are pure functions of (config, seed)
// — the simulator is single-threaded, so even the allocation count is
// exactly reproducible — which lets the gate hold allocs/event to a zero
// regression budget. Wall time is noisier: it is gated with its own, wider
// tolerance (and CI relaxes it further for shared runners; see
// .github/workflows/ci.yml), so the hard signal comes from the
// deterministic metrics.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"peas"
	"peas/internal/perf"
)

type gateMetrics struct {
	// Deterministic counters: identical for identical behavior.
	Events  uint64 `json:"events"`
	Packets uint64 `json:"packets"`
	Wakeups uint64 `json:"wakeups"`
	// CoverageSamples counts the periodic K-coverage observations the run
	// recorded; the incremental coverage engine must not change how often
	// (or whether) the lattice is sampled, only what each sample costs.
	CoverageSamples uint64 `json:"coverage_samples"`
	// Allocs is the number of heap objects allocated during the run
	// (network construction included); AllocsPerEvent divides it by Events.
	// Both are deterministic and gated at -allocs-tolerance (default 0).
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// WallNS is gated at -wall-tolerance, separately from the counters.
	WallNS int64 `json:"wall_ns"`
}

type gateBaseline struct {
	// Mode records whether the baseline was measured with -quick; the
	// scenario horizons differ, so comparing across modes is meaningless.
	Mode      string                 `json:"mode"`
	Scenarios map[string]gateMetrics `json:"scenarios"`
}

type gateScenario struct {
	name string
	cfg  peas.RunConfig
}

// gateScenarios is the fixed workload set. Horizons are explicit (never
// the deployment-proportional default) so the work counted is pinned.
func gateScenarios(quick bool) []gateScenario {
	h := func(full, short float64) float64 {
		if quick {
			return short
		}
		return full
	}
	protocol := peas.DefaultRunConfig(160, 1)
	protocol.Forwarding = false
	protocol.FailuresPer5000s = 0
	protocol.Horizon = h(4000, 1500)

	baseline := peas.DefaultRunConfig(320, 2)
	baseline.Horizon = h(3000, 1200)

	failures := peas.DefaultRunConfig(480, 3)
	failures.FailuresPer5000s = 26.66
	failures.Horizon = h(2500, 1000)

	return []gateScenario{
		{"protocol-160", protocol},
		{"baseline-320", baseline},
		{"failures-480", failures},
	}
}

func measureGate(quick bool) (*gateBaseline, error) {
	mode := "full"
	if quick {
		mode = "quick"
	}
	out := &gateBaseline{Mode: mode, Scenarios: map[string]gateMetrics{}}
	// Each scenario runs gateRepeats times: wall time and allocation count
	// are taken as the minimum across repeats (the noise floor — scheduler
	// preemption and lazy runtime initialization only ever add), while the
	// work counters must be bit-identical on every repeat, which doubles as
	// a free determinism check.
	const gateRepeats = 3
	for _, sc := range gateScenarios(quick) {
		var m gateMetrics
		for rep := 0; rep < gateRepeats; rep++ {
			cfg := sc.cfg
			var net *peas.Network
			cfg.OnNetwork = func(n *peas.Network) { net = n }
			var meter perf.AllocMeter
			meter.Start()
			start := time.Now()
			res, err := peas.Run(cfg)
			wall := time.Since(start).Nanoseconds()
			allocs := meter.Allocs()
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sc.name, err)
			}
			cur := gateMetrics{
				Events:          net.Engine.Executed(),
				Packets:         res.PacketsSent,
				Wakeups:         res.Wakeups,
				CoverageSamples: uint64(res.CoverageSamples),
			}
			if rep == 0 {
				m = cur
				m.Allocs = allocs
				m.WallNS = wall
			} else {
				if cur != (gateMetrics{Events: m.Events, Packets: m.Packets, Wakeups: m.Wakeups, CoverageSamples: m.CoverageSamples}) {
					return nil, fmt.Errorf("scenario %s is non-deterministic: repeat %d counted (%d, %d, %d, %d), first run (%d, %d, %d, %d)",
						sc.name, rep, cur.Events, cur.Packets, cur.Wakeups, cur.CoverageSamples, m.Events, m.Packets, m.Wakeups, m.CoverageSamples)
				}
				if allocs < m.Allocs {
					m.Allocs = allocs
				}
				if wall < m.WallNS {
					m.WallNS = wall
				}
			}
			// Settle pooled garbage before the next measurement so its
			// allocation count starts clean.
			runtime.GC()
		}
		if m.Events > 0 {
			m.AllocsPerEvent = float64(m.Allocs) / float64(m.Events)
		}
		out.Scenarios[sc.name] = m
		fmt.Printf("%-14s events=%-9d packets=%-8d wakeups=%-7d covsamples=%-5d allocs/event=%-7.3f wall=%s\n",
			sc.name, m.Events, m.Packets, m.Wakeups, m.CoverageSamples, m.AllocsPerEvent,
			time.Duration(m.WallNS).Round(time.Millisecond))
	}
	return out, nil
}

// gateTolerances bundles the per-metric regression budgets.
type gateTolerances struct {
	counters float64 // events/packets/wakeups
	allocs   float64 // allocs-per-event (0 = any increase fails)
	wall     float64 // wall time (negative = advisory only)
}

// runGate measures the scenario set and either writes the baseline file
// (write=true) or compares against it, returning an error if any gated
// metric regressed beyond its tolerance.
func runGate(path string, tol gateTolerances, write, quick bool) error {
	current, err := measureGate(quick)
	if err != nil {
		return err
	}
	if write {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline written to %s (mode=%s)\n", path, current.Mode)
		return nil
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline (generate one with -write-baseline): %w", err)
	}
	var base gateBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if base.Mode != current.Mode {
		return fmt.Errorf("baseline %s was measured in %s mode, this run is %s mode; match the -quick flag or regenerate with -write-baseline",
			path, base.Mode, current.Mode)
	}

	names := make([]string, 0, len(base.Scenarios))
	for name := range base.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		b := base.Scenarios[name]
		c, ok := current.Scenarios[name]
		if !ok {
			return fmt.Errorf("scenario %s is in the baseline but no longer measured; regenerate with -write-baseline", name)
		}
		check := func(metric string, baseV, curV, tolerance float64) {
			if baseV == 0 {
				return // metric absent from an older baseline
			}
			ratio := curV / baseV
			switch {
			case ratio > 1+tolerance:
				regressions = append(regressions, fmt.Sprintf(
					"%s %s: %g -> %g (%+.1f%%, limit %+.0f%%)",
					name, metric, baseV, curV, 100*(ratio-1), 100*tolerance))
			case ratio < 1-tolerance && tolerance > 0:
				fmt.Printf("note: %s %s improved %g -> %g (%.1f%%); consider refreshing the baseline\n",
					name, metric, baseV, curV, 100*(ratio-1))
			}
		}
		check("events", float64(b.Events), float64(c.Events), tol.counters)
		check("packets", float64(b.Packets), float64(c.Packets), tol.counters)
		check("wakeups", float64(b.Wakeups), float64(c.Wakeups), tol.counters)
		check("coverage-samples", float64(b.CoverageSamples), float64(c.CoverageSamples), tol.counters)
		check("allocs/event", b.AllocsPerEvent, c.AllocsPerEvent, tol.allocs)
		if b.WallNS > 0 {
			ratio := float64(c.WallNS) / float64(b.WallNS)
			if tol.wall < 0 {
				if ratio > 1.10 {
					fmt.Printf("note: %s wall time %.2fx baseline (advisory only)\n", name, ratio)
				}
			} else if ratio > 1+tol.wall {
				regressions = append(regressions, fmt.Sprintf(
					"%s wall time: %s -> %s (%.2fx, limit %+.0f%%)",
					name, time.Duration(b.WallNS).Round(time.Millisecond),
					time.Duration(c.WallNS).Round(time.Millisecond), ratio, 100*tol.wall))
			}
		}
	}
	for name := range current.Scenarios {
		if _, ok := base.Scenarios[name]; !ok {
			return fmt.Errorf("scenario %s has no baseline entry; regenerate with -write-baseline", name)
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark metric(s) regressed beyond tolerance", len(regressions))
	}
	fmt.Printf("bench gate: OK (%d scenarios vs %s; counters within %.0f%%, allocs/event within %.0f%%, wall within %.0f%%)\n",
		len(names), path, 100*tol.counters, 100*tol.allocs, 100*tol.wall)
	return nil
}
