package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"peas"
	"peas/internal/client"
	"peas/internal/jobqueue"
)

// runRemote submits the configured simulation to a peas-serve instance
// instead of running it in-process, follows the job's SSE progress
// stream, and prints the same metric summary the local path does plus
// the service-side identity: the content key, the cache outcome, and
// the recorded StateHash. Because the engine is bit-exact, a cache hit
// is indistinguishable from a fresh run — the hash proves it.
func runRemote(url string, cfg peas.RunConfig, check bool) error {
	spec := &jobqueue.Spec{
		Network:          cfg.Network,
		FailuresPer5000s: cfg.FailuresPer5000s,
		Horizon:          cfg.Horizon,
		Forwarding:       cfg.Forwarding,
		CoverageSpacing:  cfg.CoverageSpacing,
		Check:            check,
		Chaos:            cfg.Chaos,
	}
	c := client.New(url)
	// Interrupts cancel the context mid-follow; the deferred hook below
	// then tells the server to stop the job instead of abandoning it to
	// burn a worker until its horizon.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Bounded retries absorb transient saturation: each 429 is retried
	// with the server's Retry-After hint under capped exponential
	// backoff before giving up.
	resp, err := c.SubmitWithRetry(ctx, spec, client.RetryPolicy{
		OnRetry: func(attempt int, wait time.Duration) {
			fmt.Printf("service busy (attempt %d); retrying in %s\n", attempt, wait)
		},
	})
	if err != nil {
		var retryable *client.RetryableError
		if errors.As(err, &retryable) {
			return fmt.Errorf("service at capacity; retry in %s", retryable.RetryAfter)
		}
		return err
	}
	fmt.Printf("remote:                %s\n", url)
	fmt.Printf("job:                   %s (%s)\n", resp.Job.ID, resp.Outcome)
	fmt.Printf("content key:           %s\n", resp.Job.Key)

	// Best-effort cancellation on interrupt: the signal context is dead,
	// so the DELETE gets its own short budget. The server parks a
	// checkpoint, so re-running the same spec later resumes bit-exactly.
	defer func() {
		if ctx.Err() == nil || resp.Outcome == jobqueue.OutcomeCached {
			return
		}
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if cr, cerr := c.Cancel(cctx, resp.Job.ID); cerr == nil && cr.Requested {
			fmt.Fprintf(os.Stderr, "interrupted: requested cancellation of job %s\n", resp.Job.ID)
		}
	}()

	if resp.Outcome != jobqueue.OutcomeCached {
		// Follow progress at ~decile granularity until the job ends.
		lastDecile := -1
		err = c.Events(ctx, resp.Job.ID, func(ev jobqueue.Event) bool {
			if ev.Type == jobqueue.EventProgress && ev.Horizon > 0 {
				if d := int(ev.Fraction * 10); d > lastDecile {
					lastDecile = d
					fmt.Printf("progress:              t=%.0f s of %.0f s (%d%%), %d working\n",
						ev.SimT, ev.Horizon, int(ev.Fraction*100), ev.Working)
				}
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("event stream: %w", err)
		}
	}

	info, err := c.Wait(ctx, resp.Job.ID)
	if err != nil {
		return err
	}
	res := info.Result
	if res == nil || res.Stats == nil {
		return fmt.Errorf("job %s finished without run stats", info.ID)
	}
	fmt.Printf("state hash:            %s\n", res.StateHash)
	fmt.Printf("server wall time:      %.3f s", res.WallSeconds)
	if res.Events > 0 {
		fmt.Printf(" (%d events, %.3f allocs/event)", res.Events, res.AllocsPerEvent)
	}
	fmt.Println()
	printStats(cfg.Network.N, cfg.Network.Seed, cfg.Forwarding, res.Stats)
	if len(res.Chaos) > 0 {
		fmt.Println("chaos activity:")
		for name, v := range res.Chaos {
			fmt.Printf("  %-20s %8d\n", name, v)
		}
	}
	return nil
}
