// Command peas-sim runs one PEAS simulation with the paper's setup and
// prints the metrics: coverage lifetimes, data delivery lifetime, wakeup
// count and energy overhead.
//
// Usage:
//
//	peas-sim -n 480 -seed 1 -failures 10.66 -horizon 0
//	peas-sim -n 480 -checkpoint-every 1000 -checkpoint-dir ckpts
//	peas-sim -resume ckpts/checkpoint-t0003000.0.ckpt
//	peas-sim -n 160 -seed 1 -verify
//	peas-sim -n 160 -seed 1 -check
//
// A horizon of 0 selects a deployment-proportional default long enough
// for the network to exhaust itself. -checkpoint-every writes periodic
// full-state snapshots, -resume continues one, and -verify asserts that
// a checkpointed-and-resumed run ends bit-identical to a direct run.
// -check arms the runtime invariant oracle (energy conservation, radio
// discipline, worker redundancy, timer monotonicity) and verifies the
// checkpoint chain, exiting non-zero on any violation.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"peas"
	"peas/internal/buildinfo"
	"peas/internal/experiment"
	"peas/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peas-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 480, "number of deployed nodes")
		seed      = flag.Int64("seed", 1, "simulation seed")
		failures  = flag.Float64("failures", 10.66, "injected failures per 5000 s")
		horizon   = flag.Float64("horizon", 0, "simulated seconds (0 = auto)")
		forward   = flag.Bool("forward", true, "run the source->sink data workload")
		rp        = flag.Float64("rp", 3, "probing range Rp in meters")
		lambdaD   = flag.Float64("lambda-d", 0.02, "desired aggregate probing rate λd (1/s)")
		lambda0   = flag.Float64("lambda-0", 0.1, "initial probing rate λ0 (1/s)")
		loss      = flag.Float64("loss", 0, "extra i.i.d. packet loss rate [0,1)")
		turnoff   = flag.Bool("turnoff", true, "enable the §4 redundant-worker turn-off")
		traceOut  = flag.String("trace", "", "write a JSONL event trace to this file")
		svgOut    = flag.String("svg", "", "write a final-state SVG snapshot to this file")
		ascii     = flag.Bool("ascii", false, "print a final-state ASCII map")
		seriesOut = flag.String("series", "", "write the working/coverage time series as CSV to this file")
		config    = flag.String("config", "", "load a JSON scenario file (flags below still override)")
		ckptEvery = flag.Float64("checkpoint-every", 0, "write a checkpoint every this many simulated seconds")
		ckptDir   = flag.String("checkpoint-dir", ".", "directory for periodic checkpoints")
		resume    = flag.String("resume", "", "resume from this checkpoint file instead of starting fresh")
		verify    = flag.Bool("verify", false, "check checkpoint determinism: direct run vs checkpoint+resume must hash equal")
		check     = flag.Bool("check", false, "run with the runtime invariant oracle armed and verify the checkpoint chain; non-zero exit on any violation")
		chaosPlan = flag.String("chaos-plan", "", `run under a scripted fault plan: a JSON file path or "mixed" (see peas-chaos)`)
		remote    = flag.String("remote", "", "submit to a peas-serve instance at this base URL instead of running locally")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("peas-sim"))
		return nil
	}

	cfg := peas.DefaultRunConfig(*n, *seed)
	if *config != "" {
		sc, err := scenario.Load(*config)
		if err != nil {
			return err
		}
		cfg = sc.RunConfig()
		*n = cfg.Network.N
		*seed = cfg.Network.Seed
	}
	if *config == "" {
		cfg.FailuresPer5000s = *failures
		cfg.Horizon = *horizon
		cfg.Forwarding = *forward
		cfg.Network.Protocol.ProbingRange = *rp
		cfg.Network.Protocol.DesiredRate = *lambdaD
		cfg.Network.Protocol.InitialRate = *lambda0
		cfg.Network.Protocol.TurnoffEnabled = *turnoff
		cfg.Network.Radio.LossRate = *loss
	}

	var chaosCounters *peas.FaultCounters
	if *chaosPlan != "" {
		if *verify || *check || *resume != "" || *ckptEvery > 0 {
			return fmt.Errorf("-chaos-plan cannot combine with -verify, -check, -resume or -checkpoint-every (chaos state lives outside the checkpoint format)")
		}
		horizon := cfg.Horizon
		if horizon <= 0 {
			horizon = experiment.DefaultHorizon(cfg.Network.N)
		}
		var plan *peas.ChaosPlan
		if *chaosPlan == "mixed" {
			plan = peas.MixedChaosPlan(horizon, cfg.Network.Seed)
		} else {
			p, err := peas.LoadChaosPlan(*chaosPlan)
			if err != nil {
				return err
			}
			plan = p
		}
		chaosCounters = peas.NewFaultCounters()
		cfg.Chaos = plan
		cfg.ChaosCounters = chaosCounters
		fmt.Printf("chaos plan:            %s (%d events, %d classes)\n",
			plan.Name, len(plan.Events), len(plan.Classes()))
	}

	if *remote != "" {
		if *verify || *resume != "" || *ckptEvery > 0 || *traceOut != "" ||
			*svgOut != "" || *ascii || *seriesOut != "" {
			return fmt.Errorf("-remote only supports the plain run flags (plus -check and -chaos-plan); local-only outputs are unavailable")
		}
		return runRemote(*remote, cfg, *check)
	}
	if *verify {
		return runVerify(cfg)
	}
	if *check {
		return runCheck(cfg, *traceOut)
	}
	if *resume != "" {
		snap, err := loadCheckpoint(*resume)
		if err != nil {
			return err
		}
		// The snapshot carries the full configuration; -horizon (when
		// positive) extends the run past the recorded end time.
		cfg.Resume = snap
		*n = snap.Net.N
		*seed = snap.Net.Seed
		fmt.Printf("resuming:              %s (t=%.1f s, %d nodes)\n",
			*resume, snap.SimTime, snap.Net.N)
	}
	var ckptErr error
	if *ckptEvery > 0 {
		cfg.CheckpointEvery = *ckptEvery
		cfg.OnCheckpoint = func(s *peas.Checkpoint) bool {
			path, err := writeCheckpoint(*ckptDir, s)
			if err != nil {
				ckptErr = err
				return true // stop the run; the error surfaces below
			}
			fmt.Printf("checkpoint:            t=%.1f s -> %s\n", s.SimTime, path)
			return false
		}
	}

	var recorder *peas.TraceRecorder
	if *traceOut != "" {
		recorder = peas.NewTraceRecorder(0)
		cfg.Trace = recorder
	}
	var seriesFile *os.File
	var seriesW *csv.Writer
	if *seriesOut != "" {
		f, err := os.Create(*seriesOut)
		if err != nil {
			return fmt.Errorf("create series file: %w", err)
		}
		seriesFile = f
		seriesW = csv.NewWriter(f)
		if err := seriesW.Write([]string{"t", "working", "cov1", "cov2", "cov3", "cov4", "cov5"}); err != nil {
			return err
		}
		cfg.OnSample = func(t float64, working int, byK []float64) {
			row := make([]string, 0, 7)
			row = append(row, strconv.FormatFloat(t, 'f', 1, 64), strconv.Itoa(working))
			for _, v := range byK {
				row = append(row, strconv.FormatFloat(v, 'f', 4, 64))
			}
			_ = seriesW.Write(row)
		}
	}

	var snapshotErr error
	if *svgOut != "" || *ascii {
		cfg.OnFinish = func(net *peas.Network) {
			if *ascii {
				fmt.Println(peas.RenderASCII(net, 2))
			}
			if *svgOut != "" {
				f, err := os.Create(*svgOut)
				if err != nil {
					snapshotErr = err
					return
				}
				if err := peas.RenderSVG(f, net, peas.SVGOptions{
					SensingRange: 10,
					Title:        fmt.Sprintf("PEAS %d nodes, t=%.0f s", *n, net.Engine.Now()),
				}); err != nil {
					snapshotErr = err
				}
				if err := f.Close(); err != nil && snapshotErr == nil {
					snapshotErr = err
				}
			}
		}
	}

	res, err := peas.Run(cfg)
	if err != nil {
		return err
	}
	if ckptErr != nil {
		return fmt.Errorf("write checkpoint: %w", ckptErr)
	}
	if snapshotErr != nil {
		return fmt.Errorf("snapshot: %w", snapshotErr)
	}

	if recorder != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("create trace file: %w", err)
		}
		if err := recorder.WriteJSONL(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("write trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace:                 %d events -> %s\n", recorder.Len(), *traceOut)
	}
	if seriesW != nil {
		seriesW.Flush()
		if err := seriesW.Error(); err != nil {
			_ = seriesFile.Close()
			return fmt.Errorf("write series: %w", err)
		}
		if err := seriesFile.Close(); err != nil {
			return err
		}
		fmt.Printf("series:                -> %s\n", *seriesOut)
	}

	printStats(*n, *seed, cfg.Forwarding, res)
	if chaosCounters != nil {
		fmt.Println("chaos activity:")
		for _, name := range chaosCounters.Names() {
			fmt.Printf("  %-20s %8d\n", name, chaosCounters.Get(name))
		}
	}
	return nil
}

// printStats renders the metric summary shared by local and remote runs.
func printStats(n int, seed int64, forwarding bool, res *peas.RunStats) {
	fmt.Printf("deployment:            %d nodes, seed %d\n", n, seed)
	fmt.Printf("mean working nodes:    %.1f\n", res.MeanWorking)
	for k := 3; k <= 5; k++ {
		fmt.Printf("%d-coverage lifetime:   %.0f s (dropped=%v)\n",
			k, res.CoverageLifetime[k-1], res.CoverageDropped[k-1])
	}
	if forwarding {
		fmt.Printf("data delivery lifetime: %.0f s (dropped=%v; %d/%d reports)\n",
			res.DeliveryLifetime, res.DeliveryDropped, res.ReportsDelivered, res.ReportsGenerated)
	}
	fmt.Printf("wakeups:               %d\n", res.Wakeups)
	fmt.Printf("energy overhead:       %.2f J of %.0f J total (%.3f%%)\n",
		res.ProtocolEnergy, res.TotalEnergy, 100*res.OverheadRatio)
	fmt.Printf("failures injected:     %d (%.1f%% of deployment)\n",
		res.FailuresInjected, 100*res.FailedFraction)
	fmt.Printf("packets:               sent=%d delivered=%d collided=%d\n",
		res.PacketsSent, res.PacketsDelivered, res.PacketsCollided)
}

// runCheck arms the runtime invariant oracle on the configured run and
// then re-runs it through the checkpoint-chain differential. Any
// invariant violation or chain divergence is reported and turned into a
// non-zero exit. With -trace, the instrumented run's event trace is
// written out so a reported violation can be located in context.
func runCheck(cfg peas.RunConfig, traceOut string) error {
	if cfg.Horizon <= 0 {
		// The open-ended run-to-exhaustion default is the wrong shape for
		// a check pass; bound it to the paper's evaluation horizon.
		cfg.Horizon = 5000
		fmt.Println("check:           horizon unset, using 5000 s")
	}

	var recorder *peas.TraceRecorder
	if traceOut != "" {
		recorder = peas.NewTraceRecorder(0)
		cfg.Trace = recorder
	}
	var checker *peas.InvariantChecker
	cfg.OnNetwork = func(net *peas.Network) {
		checker = peas.AttachChecker(net, peas.DefaultInvariantConfig())
	}
	if _, err := peas.Run(cfg); err != nil {
		return err
	}
	if recorder != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return fmt.Errorf("create trace file: %w", err)
		}
		if err := recorder.WriteJSONL(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("write trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace:           %d events -> %s\n", recorder.Len(), traceOut)
	}
	violations := checker.Violations()
	fmt.Printf("invariants:      %d violations over %.0f s (%d nodes)\n",
		len(violations)+checker.Dropped(), cfg.Horizon, cfg.Network.N)
	for _, v := range violations {
		fmt.Printf("  %s\n", v)
	}
	if d := checker.Dropped(); d > 0 {
		fmt.Printf("  ... and %d more (capped)\n", d)
	}

	// The chain differential re-runs from scratch; detach the observers
	// that belong to the instrumented pass.
	chainCfg := cfg
	chainCfg.Trace = nil
	chainCfg.OnNetwork = nil
	chain, err := peas.VerifyCheckpointChain(chainCfg, cfg.Horizon/4)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint chain: %d boundaries resumed against direct hash %s\n",
		chain.Boundaries, chain.FinalHash)
	for _, m := range chain.Mismatches {
		fmt.Printf("  diverged: %s\n", m)
	}

	if err := checker.Err(); err != nil {
		return err
	}
	if err := chain.Err(); err != nil {
		return err
	}
	fmt.Println("check:           OK (all invariants held, checkpoint chain bit-exact)")
	return nil
}

// runVerify checks the checkpoint determinism contract for the given
// configuration: an uninterrupted run and a checkpoint-at-T/2-then-resume
// run must end in identical state hashes.
func runVerify(cfg peas.RunConfig) error {
	res, err := peas.VerifyCheckpoint(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint at:   %.1f s of %.1f s horizon\n", res.CheckpointAt, res.Horizon)
	fmt.Printf("direct hash:     %s\n", res.DirectHash)
	fmt.Printf("resumed hash:    %s\n", res.ResumedHash)
	if !res.Match {
		return fmt.Errorf("state hash mismatch: resumed run diverged from direct run")
	}
	fmt.Println("verify:          OK (resumed run is bit-identical to the direct run)")
	return nil
}

func loadCheckpoint(path string) (*peas.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := peas.DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

func writeCheckpoint(dir string, s *peas.Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("checkpoint-t%09.1f.ckpt", s.SimTime))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := s.Encode(f); err != nil {
		_ = f.Close()
		return "", err
	}
	return path, f.Close()
}
